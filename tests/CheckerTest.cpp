//===- CheckerTest.cpp - Unit tests for the instrumentation emitters -----------===//
//
// Executes the checker-emitted sequences directly on a bare machine to
// validate the signature algebra, the flag discipline, and the trap
// behavior of each technique, independent of the DBT.
//
//===----------------------------------------------------------------------===//

#include "cfc/Checker.h"
#include "cfg/Cfg.h"
#include "asm/Assembler.h"
#include "vm/Layout.h"
#include "vm/Loader.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

/// Executes \p Code followed by Halt on a bare machine with the given
/// initial state; returns the final state and stop info.
struct SeqRun {
  CpuState State;
  StopInfo Stop;
};

SeqRun runSequence(const std::vector<Instruction> &Code,
                   const CpuState &Initial) {
  Memory Mem;
  std::vector<Instruction> Full = Code;
  Full.push_back(insn::none(Opcode::Halt));
  Mem.mapRegion(CodeBase, Full.size() * InsnSize, PermRX);
  std::vector<uint8_t> Bytes(Full.size() * InsnSize);
  for (size_t I = 0; I < Full.size(); ++I)
    Full[I].encode(&Bytes[I * InsnSize]);
  Mem.writeRaw(CodeBase, Bytes.data(), Bytes.size());
  Interpreter Interp(Mem);
  Interp.state() = Initial;
  Interp.state().PC = CodeBase;
  SeqRun Run;
  Run.Stop = Interp.run(1000);
  Run.State = Interp.state();
  return Run;
}

bool sequenceIsFlagNeutral(const std::vector<Instruction> &Code) {
  for (const Instruction &I : Code)
    if (opcodeWritesFlags(I.Op))
      return false;
  return true;
}

constexpr uint64_t L1 = 0x10000, L2 = 0x10040, L3 = 0x10080;

} // namespace

//===----------------------------------------------------------------------===//
// Policy predicate.
//===----------------------------------------------------------------------===//

TEST(PolicyTest, ChecksBlockMatrix) {
  // Halt blocks are checked under every policy (the final validation).
  for (CheckPolicy P : {CheckPolicy::AllBB, CheckPolicy::RetBE,
                        CheckPolicy::Ret, CheckPolicy::End,
                        CheckPolicy::StoreBB})
    EXPECT_TRUE(policyChecksBlock(P, OpKind::Halt, false, false));

  EXPECT_TRUE(
      policyChecksBlock(CheckPolicy::AllBB, OpKind::Jump, false, false));
  EXPECT_TRUE(
      policyChecksBlock(CheckPolicy::RetBE, OpKind::Ret, false, false));
  EXPECT_TRUE(
      policyChecksBlock(CheckPolicy::RetBE, OpKind::CondJump, true, false));
  EXPECT_FALSE(policyChecksBlock(CheckPolicy::RetBE, OpKind::CondJump,
                                 false, false));
  EXPECT_TRUE(
      policyChecksBlock(CheckPolicy::Ret, OpKind::Ret, false, false));
  EXPECT_FALSE(
      policyChecksBlock(CheckPolicy::Ret, OpKind::CondJump, true, false));
  EXPECT_FALSE(
      policyChecksBlock(CheckPolicy::End, OpKind::Ret, false, false));
  EXPECT_FALSE(
      policyChecksBlock(CheckPolicy::End, OpKind::Jump, true, true));
  EXPECT_TRUE(
      policyChecksBlock(CheckPolicy::StoreBB, OpKind::Jump, false, true));
  EXPECT_FALSE(
      policyChecksBlock(CheckPolicy::StoreBB, OpKind::Ret, true, false));
}

TEST(PolicyTest, StoreClassification) {
  EXPECT_TRUE(opcodeStoresMemory(Opcode::St));
  EXPECT_TRUE(opcodeStoresMemory(Opcode::StB));
  EXPECT_TRUE(opcodeStoresMemory(Opcode::FSt));
  EXPECT_TRUE(opcodeStoresMemory(Opcode::Push));
  EXPECT_TRUE(opcodeStoresMemory(Opcode::Call));
  EXPECT_FALSE(opcodeStoresMemory(Opcode::Ld));
  EXPECT_FALSE(opcodeStoresMemory(Opcode::Pop));
  EXPECT_FALSE(opcodeStoresMemory(Opcode::Add));
  EXPECT_FALSE(opcodeStoresMemory(Opcode::Out));
}

//===----------------------------------------------------------------------===//
// EdgCF algebra, executed.
//===----------------------------------------------------------------------===//

class EdgCfEmissionTest : public ::testing::TestWithParam<UpdateFlavor> {
protected:
  std::unique_ptr<ControlFlowChecker> Checker =
      createChecker(Technique::EdgCf, GetParam());
};

TEST_P(EdgCfEmissionTest, PrologueAcceptsCorrectSignature) {
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, L1, /*DoCheck=*/true);
  CpuState Initial;
  Initial.Regs[RegPCP] = L1;
  SeqRun Run = runSequence(Code, Initial);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Run.State.Regs[RegPCP], 0u); // In-body value.
}

TEST_P(EdgCfEmissionTest, PrologueTrapsOnWrongSignature) {
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, L1, /*DoCheck=*/true);
  CpuState Initial;
  Initial.Regs[RegPCP] = L2; // Arrived from a wrong edge.
  SeqRun Run = runSequence(Code, Initial);
  ASSERT_EQ(Run.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(Run.Stop.Trap, TrapKind::BreakTrap);
  EXPECT_EQ(Run.Stop.BreakCode, BrkControlFlowError);
}

TEST_P(EdgCfEmissionTest, DirectUpdateSetsEdgeSignature) {
  std::vector<Instruction> Code;
  Checker->emitDirectUpdate(Code, L1, L2);
  CpuState Initial; // In-body: PC' == 0.
  SeqRun Run = runSequence(Code, Initial);
  EXPECT_EQ(Run.State.Regs[RegPCP], L2);
  EXPECT_TRUE(sequenceIsFlagNeutral(Code));
}

TEST_P(EdgCfEmissionTest, CondUpdatePicksTakenSignature) {
  std::vector<Instruction> Code;
  Checker->emitCondUpdate(Code, L1, CondCode::LT, L2, L3);
  EXPECT_TRUE(sequenceIsFlagNeutral(Code));
  CpuState Initial;
  Initial.F.SF = true; // LT holds: branch will be taken.
  SeqRun Run = runSequence(Code, Initial);
  EXPECT_EQ(Run.State.Regs[RegPCP], L2);
}

TEST_P(EdgCfEmissionTest, CondUpdatePicksFallSignature) {
  std::vector<Instruction> Code;
  Checker->emitCondUpdate(Code, L1, CondCode::LT, L2, L3);
  CpuState Initial; // LT does not hold.
  SeqRun Run = runSequence(Code, Initial);
  EXPECT_EQ(Run.State.Regs[RegPCP], L3);
}

TEST_P(EdgCfEmissionTest, RegCondUpdateFollowsRegister) {
  std::vector<Instruction> Code;
  Checker->emitRegCondUpdate(Code, L1, Opcode::Jzr, 5, L2, L3);
  CpuState Taken;
  Taken.Regs[5] = 0; // Jzr taken.
  EXPECT_EQ(runSequence(Code, Taken).State.Regs[RegPCP], L2);
  CpuState Fall;
  Fall.Regs[5] = 7;
  EXPECT_EQ(runSequence(Code, Fall).State.Regs[RegPCP], L3);
}

TEST_P(EdgCfEmissionTest, IndirectUpdateUsesDynamicTarget) {
  std::vector<Instruction> Code;
  Checker->emitIndirectUpdate(Code, L1, 7);
  CpuState Initial;
  Initial.Regs[7] = L3;
  SeqRun Run = runSequence(Code, Initial);
  EXPECT_EQ(Run.State.Regs[RegPCP], L3);
  EXPECT_EQ(Run.State.Regs[7], L3); // Target register preserved.
}

TEST_P(EdgCfEmissionTest, ErrorStickyThroughUpdates) {
  // Once PC' is wrong it stays wrong across head + exit updates
  // (Section 6: check-at-the-end is sound).
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, L1, /*DoCheck=*/false);
  Checker->emitDirectUpdate(Code, L1, L2);
  CpuState Initial;
  Initial.Regs[RegPCP] = L1 + 8; // Corrupted by one earlier error.
  SeqRun Run = runSequence(Code, Initial);
  EXPECT_EQ(Run.State.Regs[RegPCP], L2 + 8);
}

INSTANTIATE_TEST_SUITE_P(Flavors, EdgCfEmissionTest,
                         ::testing::Values(UpdateFlavor::Jcc,
                                           UpdateFlavor::CMovcc),
                         [](const auto &Info) {
                           return std::string(
                               getUpdateFlavorName(Info.param));
                         });

//===----------------------------------------------------------------------===//
// RCF regions, executed.
//===----------------------------------------------------------------------===//

TEST(RcfEmissionTest, PrologueKeepsEdgeValueDuringCheck) {
  // The check compares through AUX, so PC' still holds the block-unique
  // edge value while the inserted check branch executes — the property
  // that protects the check branch (Section 3.2).
  auto Checker = createChecker(Technique::Rcf, UpdateFlavor::Jcc);
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, L1, /*DoCheck=*/true);
  // Find the check branch (the jzr): PC' must not have been modified
  // before it.
  bool SawPcpWriteBeforeBranch = false;
  for (const Instruction &I : Code) {
    if (getOpcodeKind(I.Op) == OpKind::RegZeroJump)
      break;
    if (I.Op == Opcode::Lea && I.A == RegPCP)
      SawPcpWriteBeforeBranch = true;
  }
  EXPECT_FALSE(SawPcpWriteBeforeBranch);

  CpuState Initial;
  Initial.Regs[RegPCP] = L1;
  SeqRun Run = runSequence(Code, Initial);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Run.State.Regs[RegPCP], L1 + 1); // Body region signature.
}

TEST(RcfEmissionTest, BodySignaturesAreBlockUnique) {
  auto Checker = createChecker(Technique::Rcf, UpdateFlavor::Jcc);
  // Round-trip: enter L1, leave to L2, enter L2. The in-body values
  // must differ between the blocks.
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, L1, true);
  CpuState Initial;
  Initial.Regs[RegPCP] = L1;
  uint64_t Body1 = runSequence(Code, Initial).State.Regs[RegPCP];

  Code.clear();
  Checker->emitPrologue(Code, L2, true);
  Initial.Regs[RegPCP] = L2;
  uint64_t Body2 = runSequence(Code, Initial).State.Regs[RegPCP];
  EXPECT_NE(Body1, Body2);
  EXPECT_NE(Body1, 0u);
}

TEST(RcfEmissionTest, FullEdgeRoundTrip) {
  auto Checker = createChecker(Technique::Rcf, UpdateFlavor::CMovcc);
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, L1, true);
  Checker->emitCondUpdate(Code, L1, CondCode::EQ, L2, L3);
  CpuState Initial;
  Initial.Regs[RegPCP] = L1;
  Initial.F.ZF = true; // Taken.
  SeqRun Run = runSequence(Code, Initial);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Run.State.Regs[RegPCP], L2);
}

//===----------------------------------------------------------------------===//
// ECF run-time adjusting signature, executed.
//===----------------------------------------------------------------------===//

TEST(EcfEmissionTest, HeadAppliesRtsAndChecks) {
  auto Checker = createChecker(Technique::Ecf, UpdateFlavor::Jcc);
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, L2, true);
  CpuState Initial;
  Initial.Regs[RegPCP] = L1;          // Previous block's signature.
  Initial.Regs[RegRTS] = L2 - L1;     // Edge delta set by the exit.
  SeqRun Run = runSequence(Code, Initial);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Run.State.Regs[RegPCP], L2);
}

TEST(EcfEmissionTest, HeadTrapsOnWrongDelta) {
  auto Checker = createChecker(Technique::Ecf, UpdateFlavor::Jcc);
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, L2, true);
  CpuState Initial;
  Initial.Regs[RegPCP] = L1;
  Initial.Regs[RegRTS] = L3 - L1; // Delta for a different block.
  SeqRun Run = runSequence(Code, Initial);
  ASSERT_EQ(Run.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(Run.Stop.BreakCode, BrkControlFlowError);
}

TEST(EcfEmissionTest, CondUpdateSetsRtsOnly) {
  for (UpdateFlavor Flavor : {UpdateFlavor::Jcc, UpdateFlavor::CMovcc}) {
    auto Checker = createChecker(Technique::Ecf, Flavor);
    std::vector<Instruction> Code;
    Checker->emitCondUpdate(Code, L1, CondCode::GT, L2, L3);
    EXPECT_TRUE(sequenceIsFlagNeutral(Code));
    CpuState Initial;
    Initial.Regs[RegPCP] = L1;
    Initial.F.ZF = false;
    Initial.F.SF = false; // GT holds: taken.
    SeqRun Run = runSequence(Code, Initial);
    EXPECT_EQ(Run.State.Regs[RegRTS], L2 - L1);
    EXPECT_EQ(Run.State.Regs[RegPCP], L1); // PC' untouched at exits.
  }
}

TEST(EcfEmissionTest, IndirectUpdateComputesDelta) {
  auto Checker = createChecker(Technique::Ecf, UpdateFlavor::Jcc);
  std::vector<Instruction> Code;
  Checker->emitIndirectUpdate(Code, L1, 9);
  CpuState Initial;
  Initial.Regs[9] = L3;
  SeqRun Run = runSequence(Code, Initial);
  EXPECT_EQ(Run.State.Regs[RegRTS], L3 - L1);
}

//===----------------------------------------------------------------------===//
// CFCSS preparation and emission.
//===----------------------------------------------------------------------===//

namespace {

Cfg buildCfgFrom(const std::string &Source) {
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  const AsmProgram &P = Result.Program;
  return Cfg::build(P.Code.data(), P.Code.size(), CodeBase, P.Entry,
                    P.CodeLabels);
}

} // namespace

TEST(CfcssEmissionTest, RequiresWholeProgramCfg) {
  auto Checker = createChecker(Technique::Cfcss, UpdateFlavor::Jcc);
  EXPECT_TRUE(Checker->requiresWholeProgramCfg());
  auto Edg = createChecker(Technique::EdgCf, UpdateFlavor::Jcc);
  EXPECT_FALSE(Edg->requiresWholeProgramCfg());
}

TEST(CfcssEmissionTest, PrepareRejectsIndirectControlFlow) {
  Cfg G = buildCfgFrom(".entry main\nf: ret\nmain:\nmovi r1, f\n"
                       "callr r1\nhalt\n");
  auto Checker = createChecker(Technique::Cfcss, UpdateFlavor::Jcc);
  EXPECT_FALSE(Checker->prepare(G));
}

TEST(CfcssEmissionTest, CorrectPathExecutes) {
  // Straight-line two-block chain: prologue(L2) after exit-of-L1 must
  // pass when G carries L1's signature.
  Cfg G = buildCfgFrom("a:\nmovi r1, 1\njmp b\nb:\nhalt\n");
  auto Checker = createChecker(Technique::Cfcss, UpdateFlavor::Jcc);
  ASSERT_TRUE(Checker->prepare(G));
  uint64_t A = CodeBase, B = CodeBase + 2 * InsnSize;

  CpuState State;
  Checker->initState(State, A);
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, A, true);
  Checker->emitDirectUpdate(Code, A, B);
  Checker->emitPrologue(Code, B, true);
  SeqRun Run = runSequence(Code, State);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted);
}

TEST(CfcssEmissionTest, WrongPathTraps) {
  // Jumping from block a directly into c (not a successor) must fail
  // c's check.
  Cfg G = buildCfgFrom("a:\nmovi r1, 1\njmp b\nb:\nmovi r2, 2\njmp c\n"
                       "c:\nhalt\n");
  auto Checker = createChecker(Technique::Cfcss, UpdateFlavor::Jcc);
  ASSERT_TRUE(Checker->prepare(G));
  uint64_t A = CodeBase, C = CodeBase + 4 * InsnSize;

  CpuState State;
  Checker->initState(State, A);
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, A, true);
  Checker->emitDirectUpdate(Code, A, C); // No such edge statically...
  Checker->emitPrologue(Code, C, true);  // ...so C's check must fire.
  SeqRun Run = runSequence(Code, State);
  ASSERT_EQ(Run.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(Run.Stop.BreakCode, BrkControlFlowError);
}

//===----------------------------------------------------------------------===//
// ECCA preparation and emission.
//===----------------------------------------------------------------------===//

TEST(EccaEmissionTest, CorrectPathExecutes) {
  Cfg G = buildCfgFrom("a:\nmovi r1, 1\njmp b\nb:\nhalt\n");
  auto Checker = createChecker(Technique::Ecca, UpdateFlavor::Jcc);
  ASSERT_TRUE(Checker->prepare(G));
  uint64_t A = CodeBase, B = CodeBase + 2 * InsnSize;

  CpuState State;
  Checker->initState(State, A);
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, A, true);
  Checker->emitDirectUpdate(Code, A, B);
  Checker->emitPrologue(Code, B, true);
  SeqRun Run = runSequence(Code, State);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted);
}

TEST(EccaEmissionTest, WrongEntryDivTraps) {
  // Entering a block whose BID does not divide id fires the div-by-zero
  // assertion — ECCA's detection mechanism.
  Cfg G = buildCfgFrom("a:\nmovi r1, 1\njmp b\nb:\nmovi r2, 2\njmp c\n"
                       "c:\nhalt\n");
  auto Checker = createChecker(Technique::Ecca, UpdateFlavor::Jcc);
  ASSERT_TRUE(Checker->prepare(G));
  uint64_t A = CodeBase, C = CodeBase + 4 * InsnSize;

  CpuState State;
  Checker->initState(State, A);
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, A, true);
  Checker->emitDirectUpdate(Code, A, C);
  Checker->emitPrologue(Code, C, true);
  SeqRun Run = runSequence(Code, State);
  ASSERT_EQ(Run.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(Run.Stop.Trap, TrapKind::DivByZero);
}

TEST(EccaEmissionTest, ExitUpdateIsFlagNeutralOnConditionalExits) {
  Cfg G = buildCfgFrom(
      "a:\ncmpi r1, 0\njcc eq, c\nb:\nhalt\nc:\nhalt\n");
  auto Checker = createChecker(Technique::Ecca, UpdateFlavor::Jcc);
  ASSERT_TRUE(Checker->prepare(G));
  std::vector<Instruction> Code;
  Checker->emitCondUpdate(Code, CodeBase, CondCode::EQ,
                          CodeBase + 4 * InsnSize,
                          CodeBase + 2 * InsnSize);
  // The SET before a conditional branch must not clobber the flags the
  // branch reads.
  EXPECT_TRUE(sequenceIsFlagNeutral(Code));
}

//===----------------------------------------------------------------------===//
// Cross-technique invariants.
//===----------------------------------------------------------------------===//

TEST(CheckerInvariantTest, NoneEmitsNothing) {
  auto Checker = createChecker(Technique::None, UpdateFlavor::Jcc);
  std::vector<Instruction> Code;
  Checker->emitPrologue(Code, L1, true);
  Checker->emitDirectUpdate(Code, L1, L2);
  Checker->emitCondUpdate(Code, L1, CondCode::EQ, L2, L3);
  Checker->emitIndirectUpdate(Code, L1, 3);
  EXPECT_TRUE(Code.empty());
}

TEST(CheckerInvariantTest, CondUpdatesNeverClobberFlags) {
  // Every technique's conditional-exit update runs between the guest's
  // compare and the guest's branch: flag writes there would change
  // program behavior.
  for (Technique Tech : {Technique::Ecf, Technique::EdgCf, Technique::Rcf})
    for (UpdateFlavor Flavor : {UpdateFlavor::Jcc, UpdateFlavor::CMovcc}) {
      auto Checker = createChecker(Tech, Flavor);
      std::vector<Instruction> Code;
      Checker->emitCondUpdate(Code, L1, CondCode::LE, L2, L3);
      EXPECT_TRUE(sequenceIsFlagNeutral(Code))
          << getTechniqueName(Tech) << "/" << getUpdateFlavorName(Flavor);
      Code.clear();
      Checker->emitRegCondUpdate(Code, L1, Opcode::Jnzr, 4, L2, L3);
      EXPECT_TRUE(sequenceIsFlagNeutral(Code)) << getTechniqueName(Tech);
    }
}

TEST(CheckerInvariantTest, JccFlavorInsertsBranchCMovDoesNot) {
  for (Technique Tech : {Technique::Ecf, Technique::EdgCf, Technique::Rcf}) {
    auto CountBranches = [&](UpdateFlavor Flavor) {
      auto Checker = createChecker(Tech, Flavor);
      std::vector<Instruction> Code;
      Checker->emitCondUpdate(Code, L1, CondCode::LT, L2, L3);
      unsigned Branches = 0;
      for (const Instruction &I : Code)
        if (hasBranchOffset(I.Op))
          ++Branches;
      return Branches;
    };
    EXPECT_EQ(CountBranches(UpdateFlavor::Jcc), 1u)
        << getTechniqueName(Tech);
    EXPECT_EQ(CountBranches(UpdateFlavor::CMovcc), 0u)
        << getTechniqueName(Tech);
  }
}

TEST(CheckerInvariantTest, PrologueWithoutCheckHasNoTrap) {
  for (Technique Tech : {Technique::Ecf, Technique::EdgCf, Technique::Rcf}) {
    auto Checker = createChecker(Tech, UpdateFlavor::Jcc);
    std::vector<Instruction> Code;
    Checker->emitPrologue(Code, L1, /*DoCheck=*/false);
    for (const Instruction &I : Code)
      EXPECT_NE(I.Op, Opcode::Brk) << getTechniqueName(Tech);
  }
}
