//===- SupportTest.cpp - Tests for the support library -----------------------===//

#include "support/Format.h"
#include "support/Prng.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <vector>

using namespace cfed;

TEST(FormatTest, Basic) {
  EXPECT_EQ(formatString("x=%d", 42), "x=42");
  EXPECT_EQ(formatString("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(formatString("%5.2f", 3.14159), " 3.14");
}

TEST(FormatTest, Empty) { EXPECT_EQ(formatString("%s", ""), ""); }

TEST(FormatTest, Long) {
  std::string Big(5000, 'x');
  EXPECT_EQ(formatString("%s", Big.c_str()).size(), 5000u);
}

TEST(PrngTest, Deterministic) {
  Prng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(PrngTest, NextBelowInRange) {
  Prng Rng(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(Rng.nextBelow(17), 17u);
}

TEST(PrngTest, NextBelowCoversAllValues) {
  Prng Rng(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(Rng.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(PrngTest, NextInRangeBounds) {
  Prng Rng(11);
  for (int I = 0; I < 1000; ++I) {
    int64_t Value = Rng.nextInRange(-5, 5);
    EXPECT_GE(Value, -5);
    EXPECT_LE(Value, 5);
  }
}

TEST(PrngTest, NextDoubleUnit) {
  Prng Rng(13);
  for (int I = 0; I < 1000; ++I) {
    double Value = Rng.nextDouble();
    EXPECT_GE(Value, 0.0);
    EXPECT_LT(Value, 1.0);
  }
}

TEST(PrngTest, ChanceExtremes) {
  Prng Rng(17);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Rng.chance(0, 10));
    EXPECT_TRUE(Rng.chance(10, 10));
  }
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geometricMean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
}

TEST(StatsTest, ArithmeticMean) {
  EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
}

TEST(TableTest, RendersAligned) {
  Table T;
  T.setHeader({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "22"});
  std::string Text = T.render();
  EXPECT_NE(Text.find("alpha"), std::string::npos);
  EXPECT_NE(Text.find("22"), std::string::npos);
  // Each line has the same width for the value column (right-aligned).
  EXPECT_NE(Text.find("    1"), std::string::npos);
}

TEST(TableTest, Separator) {
  Table T;
  T.setHeader({"a"});
  T.addRow({"x"});
  T.addSeparator();
  T.addRow({"y"});
  std::string Text = T.render();
  // Header separator plus the explicit one.
  size_t First = Text.find("---");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Text.find("---", First + 3), std::string::npos);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Touched(1000);
  Pool.parallelFor(Touched.size(),
                   [&](uint64_t I) { Touched[I].fetch_add(1); });
  for (const auto &Count : Touched)
    EXPECT_EQ(Count.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool Pool(3);
  for (int Round = 0; Round < 5; ++Round) {
    std::atomic<uint64_t> Sum{0};
    Pool.parallelFor(100, [&](uint64_t I) { Sum.fetch_add(I + 1); });
    EXPECT_EQ(Sum.load(), 5050u);
  }
}

TEST(ThreadPoolTest, SingleJobRunsInline) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.jobCount(), 1u);
  std::vector<uint64_t> Order;
  // With one job there are no workers: iteration order is sequential.
  Pool.parallelFor(10, [&](uint64_t I) { Order.push_back(I); });
  ASSERT_EQ(Order.size(), 10u);
  for (uint64_t I = 0; I < Order.size(); ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPoolTest, MoreJobsThanWork) {
  ThreadPool Pool(8);
  std::atomic<int> Calls{0};
  Pool.parallelFor(3, [&](uint64_t) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 3);
  Pool.parallelFor(0, [&](uint64_t) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 3);
}

TEST(ThreadPoolTest, DefaultJobCountHonorsEnv) {
  // CFED_JOBS wins over hardware_concurrency when set.
  setenv("CFED_JOBS", "7", 1);
  EXPECT_EQ(ThreadPool::defaultJobCount(), 7u);
  unsetenv("CFED_JOBS");
  EXPECT_GE(ThreadPool::defaultJobCount(), 1u);
}
