//===- SigTest.cpp - Tests for the Section 4 formal framework ------------------===//

#include "sig/FormalModel.h"

#include <gtest/gtest.h>

using namespace cfed;
using namespace cfed::sig;

namespace {

ConditionReport verify(Scheme &S, uint64_t Seed, unsigned Blocks = 12,
                       unsigned PathLen = 40) {
  Prng Rng(Seed);
  AbstractCfg Cfg = AbstractCfg::random(Rng, Blocks);
  return verifySingleErrorDetection(S, Cfg, PathLen,
                                    /*ContinueSteps=*/4 * Blocks,
                                    Seed * 3 + 1);
}

} // namespace

TEST(AbstractCfgTest, RandomIsConnectedWithExit) {
  Prng Rng(5);
  AbstractCfg Cfg = AbstractCfg::random(Rng, 10);
  ASSERT_EQ(Cfg.numBlocks(), 10u);
  EXPECT_TRUE(Cfg.Succs.back().empty());
  for (unsigned I = 0; I + 1 < Cfg.numBlocks(); ++I) {
    EXPECT_FALSE(Cfg.Succs[I].empty());
    EXPECT_LE(Cfg.Succs[I].size(), 2u);
  }
}

/// Claim 1 of the paper: EdgCF satisfies both the sufficient and the
/// necessary condition — every single control-flow error is detected
/// and no check fails on a correct path. RCF (unique tail regions)
/// inherits the property.
class ComprehensiveSchemeTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ComprehensiveSchemeTest, EdgCfDetectsAllSingleErrors) {
  auto S = makeEdgCfScheme();
  ConditionReport Report = verify(*S, GetParam());
  EXPECT_GT(Report.ErrorsTotal, 20u);
  EXPECT_EQ(Report.Undetected, 0u) << "EdgCF missed single errors";
  EXPECT_EQ(Report.FalsePositives, 0u);
}

TEST_P(ComprehensiveSchemeTest, RcfDetectsAllSingleErrors) {
  auto S = makeRcfScheme();
  ConditionReport Report = verify(*S, GetParam());
  EXPECT_GT(Report.ErrorsTotal, 20u);
  EXPECT_EQ(Report.Undetected, 0u) << "RCF missed single errors";
  EXPECT_EQ(Report.FalsePositives, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComprehensiveSchemeTest,
                         ::testing::Range<uint64_t>(1, 26));

/// The prior techniques satisfy the necessary condition but not the
/// sufficient one (Section 4.4: "none of them can detect all possible
/// single control-flow errors"), each with its characteristic gap.
TEST(PriorSchemesTest, EcfMissesOnlySameTailErrors) {
  auto S = makeEcfScheme();
  uint64_t SameTail = 0, Other = 0, FalsePositives = 0, Total = 0;
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    ConditionReport Report = verify(*S, Seed);
    SameTail += Report.UndetectedSameTail;
    Other += Report.Undetected - Report.UndetectedSameTail;
    FalsePositives += Report.FalsePositives;
    Total += Report.ErrorsTotal;
  }
  EXPECT_GT(Total, 1000u);
  EXPECT_GT(SameTail, 0u) << "ECF should miss category-C errors";
  EXPECT_EQ(Other, 0u) << "ECF detects everything except category C";
  EXPECT_EQ(FalsePositives, 0u);
}

TEST(PriorSchemesTest, CfcssMissesMistakenBranchesAndSameTail) {
  auto S = makeCfcssScheme();
  uint64_t Mistaken = 0, SameTail = 0, FalsePositives = 0;
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    ConditionReport Report = verify(*S, Seed);
    Mistaken += Report.UndetectedMistaken;
    SameTail += Report.UndetectedSameTail;
    FalsePositives += Report.FalsePositives;
  }
  EXPECT_GT(Mistaken, 0u) << "CFCSS cannot detect category A";
  EXPECT_GT(SameTail, 0u) << "CFCSS cannot detect category C";
  EXPECT_EQ(FalsePositives, 0u);
}

TEST(PriorSchemesTest, EccaMissesMistakenBranches) {
  auto S = makeEccaScheme();
  uint64_t Mistaken = 0, FalsePositives = 0, Undetected = 0;
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    ConditionReport Report = verify(*S, Seed);
    Mistaken += Report.UndetectedMistaken;
    Undetected += Report.Undetected;
    FalsePositives += Report.FalsePositives;
  }
  EXPECT_GT(Mistaken, 0u) << "ECCA cannot detect category A";
  EXPECT_GE(Undetected, Mistaken);
  EXPECT_EQ(FalsePositives, 0u);
}

TEST(SchemeAlgebraTest, EdgCfGenSigIsTheAdditiveForm) {
  // GEN_SIG(x, y, z) = x - y + z (Section 4.4's EFLAGS-friendly choice):
  // walking head-exit then tail-exit from state x over block y to target
  // z must produce x - hid(y) + hid(z).
  auto S = makeEdgCfScheme();
  AbstractCfg Cfg;
  Cfg.Succs = {{1}, {}};
  S->prepare(Cfg);
  Scheme::State X{12345, 0};
  Scheme::State Mid = S->genHeadExit(X, 0);
  Scheme::State Out = S->genTailExit(Mid, 0, 1);
  EXPECT_EQ(Out.A, X.A - 16 + 32); // hid(0)=16, hid(1)=32.
}

TEST(SchemeAlgebraTest, ErrorStickiness) {
  // Once wrong, always wrong (the property the relaxed checking
  // policies depend on, Section 6): propagate a corrupted state along a
  // correct path and verify every later check still fails for
  // EdgCF/RCF.
  for (auto Make : {makeEdgCfScheme, makeRcfScheme}) {
    auto S = Make();
    AbstractCfg Cfg;
    Cfg.Succs = {{1}, {2}, {3}, {}};
    S->prepare(Cfg);
    Scheme::State State = S->initial(Cfg);
    State.A += 1; // Corrupt.
    for (unsigned Block = 0; Block < 4; ++Block) {
      State = S->genHeadExit(State, Block);
      EXPECT_FALSE(S->checkTailEntry(State, Block))
          << S->name() << " block " << Block;
      if (Block + 1 < 4)
        State = S->genTailExit(State, Block, Block + 1);
    }
  }
}

TEST(SchemeAlgebraTest, CorrectPathsPassEverywhere) {
  for (auto Make : {makeEdgCfScheme, makeRcfScheme, makeEcfScheme,
                    makeCfcssScheme, makeEccaScheme}) {
    auto S = Make();
    Prng Rng(99);
    AbstractCfg Cfg = AbstractCfg::random(Rng, 16);
    ConditionReport Report =
        verifySingleErrorDetection(*S, Cfg, 60, 64, 7);
    EXPECT_EQ(Report.FalsePositives, 0u) << S->name();
  }
}
