//===- ProvenanceTest.cpp - Fault-propagation provenance tests -----------------===//
//
// Three layers of coverage for the golden-trace oracle (DESIGN.md §14):
//
//  * Digest identity: the per-sub-block digest stream is byte-identical
//    across the interpreter, the base translator and the optimizing
//    trace tier (for the flag-neutral techniques), and campaign prop
//    tallies are --jobs invariant — the properties every oracle replay
//    silently relies on.
//  * analyzePropagation classification over synthetic digest streams:
//    every funnel cell, the strict-prefix rule and the tail metrics.
//  * GoldenTrace serialization: round trip, fingerprints, rejection of
//    corrupt files.
//
//===----------------------------------------------------------------------===//

#include "dbt/Dbt.h"
#include "fault/Campaign.h"
#include "telemetry/Provenance.h"
#include "vm/Layout.h"
#include "vm/Loader.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace cfed;
using telemetry::AllPropClasses;
using telemetry::DigestRecord;
using telemetry::DigestRecorder;
using telemetry::GoldenTrace;
using telemetry::PropagationReport;
using telemetry::PropClass;
using telemetry::PropOutcome;

namespace {

AsmProgram assembleRandom(uint64_t Seed) {
  RandomProgramOptions Options;
  Options.Seed = Seed;
  Options.UseFp = (Seed % 3) == 0;
  std::string Source = generateRandomProgram(Options);
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText() << "\n" << Source;
  return Result.Program;
}

std::vector<DigestRecord> captureNative(const AsmProgram &Program) {
  Memory Mem;
  Interpreter Interp(Mem);
  DigestRecorder Rec;
  Rec.setMode(DigestRecorder::Mode::Interp);
  Interp.setDigestRecorder(&Rec);
  loadProgram(Program, LoadMode::Native, Mem, Interp.state());
  StopInfo Stop = Interp.run(10000000ULL);
  EXPECT_EQ(Stop.Kind, StopKind::Halted);
  return Rec.takeRecords();
}

std::vector<DigestRecord> captureDbt(const AsmProgram &Program,
                                     DbtTier Tier, Technique Tech) {
  DbtConfig Config;
  Config.Tier = Tier;
  Config.Tech = Tech;
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  DigestRecorder Rec;
  Translator.setDigestRecorder(&Rec);
  EXPECT_TRUE(Translator.load(Program, Interp.state()))
      << getTechniqueName(Tech);
  StopInfo Stop = Translator.run(Interp, 20000000ULL);
  EXPECT_EQ(Stop.Kind, StopKind::Halted)
      << getTechniqueName(Tech) << " trap=" << getTrapKindName(Stop.Trap);
  return Rec.takeRecords();
}

DigestRecord makeRec(uint64_t Key, uint64_t PC, uint64_t Local,
                     uint64_t Chain, bool Checked = false) {
  return DigestRecord{Key, PC, Local, Chain, Checked};
}

std::string scratchFile(const char *Name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("cfed_gt_") + Name + ".bin"))
      .string();
}

} // namespace

//===----------------------------------------------------------------------===//
// Digest identity properties
//===----------------------------------------------------------------------===//

class DigestPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DigestPropertyTest, DigestsIdenticalAcrossTiers) {
  // The oracle contract: one record per guest sub-block boundary, keyed
  // by retired guest instructions, identical whether captured by the
  // interpreter's transfer handlers or by translator-planted markers in
  // either DBT tier. Restricted to the flag-neutral techniques — CFCSS
  // and ECCA clobber guest FLAGS at runtime, so their digests are only
  // comparable within one configuration (the within-campaign case).
  uint64_t Seed = GetParam();
  AsmProgram Program = assembleRandom(Seed);

  std::vector<DigestRecord> Native = captureNative(Program);
  ASSERT_FALSE(Native.empty()) << "seed " << Seed;
  // The final boundary is the Halt terminator, so the stream spans the
  // whole run and each record carries a strictly increasing key.
  for (size_t I = 1; I < Native.size(); ++I)
    EXPECT_LT(Native[I - 1].Key, Native[I].Key) << "seed " << Seed;

  for (Technique Tech :
       {Technique::None, Technique::EdgCf, Technique::Rcf}) {
    for (DbtTier Tier : {DbtTier::Base, DbtTier::Opt}) {
      std::vector<DigestRecord> Dbt = captureDbt(Program, Tier, Tech);
      ASSERT_EQ(Dbt.size(), Native.size())
          << "seed " << Seed << " tech " << getTechniqueName(Tech)
          << " tier " << getDbtTierName(Tier);
      for (size_t I = 0; I < Native.size(); ++I) {
        // Checked is capture-config metadata (the unchecked native
        // reference records false everywhere), so cross-tier identity
        // is over the architectural fields; with no checker at all the
        // full records must match bit for bit.
        ASSERT_TRUE(Tech == Technique::None ? Dbt[I] == Native[I]
                                            : Dbt[I].sameArch(Native[I]))
            << "seed " << Seed << " tech " << getTechniqueName(Tech)
            << " tier " << getDbtTierName(Tier) << " record " << I
            << " key " << Native[I].Key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCfgs, DigestPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

TEST(ProvenanceTest, DigestSimdMatchesScalar) {
  // mixWindowScalar is the digest definition; the dispatched mixWindow
  // may route to the AVX-512 variant on hosts that have it, and a
  // golden trace recorded on one host must replay on any other, so the
  // two must agree bit for bit. (On hosts without AVX-512 this
  // degenerates to scalar-equals-scalar and trivially passes.)
  uint64_t W[telemetry::NumDigestIntRegs];
  uint64_t V = 0x9e3779b97f4a7c15ULL;
  for (int Round = 0; Round < 1000; ++Round) {
    for (uint64_t &Slot : W) {
      V ^= V << 13;
      V ^= V >> 7;
      V ^= V << 17;
      Slot = V;
    }
    ASSERT_EQ(DigestRecorder::mixWindow(W),
              DigestRecorder::mixWindowScalar(W))
        << "round " << Round;
  }
  // Degenerate windows exercise the rotation constants' edge behavior.
  uint64_t Ones[telemetry::NumDigestIntRegs];
  std::fill(std::begin(Ones), std::end(Ones), ~uint64_t(0));
  EXPECT_EQ(DigestRecorder::mixWindow(Ones),
            DigestRecorder::mixWindowScalar(Ones));
  std::fill(std::begin(Ones), std::end(Ones), uint64_t(0));
  EXPECT_EQ(DigestRecorder::mixWindow(Ones),
            DigestRecorder::mixWindowScalar(Ones));
}

TEST(ProvenanceTest, CampaignPropTalliesJobsInvariant) {
  // The propagation funnel rides the campaign's serial position-indexed
  // tally loop, so the prop.* counters must be identical for any --jobs
  // value (the property the sharding smoke in CI checks end to end).
  AsmProgram Program = assembleRandom(11);
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;

  telemetry::RegistrySnapshot Snaps[2];
  for (int I = 0; I < 2; ++I) {
    FaultCampaign Campaign(Program, Config);
    Campaign.enablePropagation(true);
    ASSERT_TRUE(Campaign.prepare(10000000ULL));
    Campaign.run(30, /*Seed=*/5, SiteClass::Any, /*Jobs=*/I == 0 ? 1 : 3);
    Snaps[I] = Campaign.metrics().snapshot();
  }
  uint64_t Total = 0;
  for (unsigned C = 0; C < NumBranchErrorCategories; ++C) {
    auto Cat = static_cast<BranchErrorCategory>(C);
    for (PropClass Class : AllPropClasses) {
      std::string Name = getPropagationCounterName(Cat, Class);
      EXPECT_EQ(Snaps[0].counterOr(Name), Snaps[1].counterOr(Name)) << Name;
      Total += Snaps[0].counterOr(Name);
    }
  }
  // Every injected fault must land in exactly one funnel cell.
  EXPECT_EQ(Total, Snaps[0].counterOr("fault.injections"));
}

TEST(ProvenanceTest, CampaignGoldenTraceMatchesStandaloneCapture) {
  // The oracle the campaign records during prepare() is the same stream
  // a standalone instrumented run captures.
  AsmProgram Program = assembleRandom(7);
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  FaultCampaign Campaign(Program, Config);
  Campaign.enablePropagation(true);
  ASSERT_TRUE(Campaign.prepare(10000000ULL));

  std::vector<DigestRecord> Standalone =
      captureDbt(Program, Config.Tier, Config.Tech);
  const GoldenTrace &Golden = Campaign.goldenTrace();
  ASSERT_EQ(Golden.Records.size(), Standalone.size());
  for (size_t I = 0; I < Standalone.size(); ++I)
    EXPECT_TRUE(Golden.Records[I] == Standalone[I]) << "record " << I;
  EXPECT_EQ(Golden.ProgramFp, Campaign.goldenHash());
  EXPECT_EQ(Golden.ConfigFp, Campaign.goldenInsns());
}

//===----------------------------------------------------------------------===//
// analyzePropagation classification
//===----------------------------------------------------------------------===//

TEST(ProvenanceTest, CleanRunsClassifyByOutcomeOnly) {
  std::vector<DigestRecord> Golden = {makeRec(4, 0x100, 10, 1),
                                      makeRec(9, 0x120, 11, 2),
                                      makeRec(15, 0x140, 12, 3)};
  for (auto [Outcome, Expected] :
       {std::pair{PropOutcome::Masked, PropClass::MaskedClean},
        std::pair{PropOutcome::Detected, PropClass::DetectedClean},
        std::pair{PropOutcome::Timeout, PropClass::TimeoutClean}}) {
    PropagationReport R = analyzePropagation(Golden, Golden, Outcome);
    EXPECT_TRUE(R.Enabled);
    EXPECT_FALSE(R.Diverged);
    EXPECT_EQ(R.Class, Expected);
    EXPECT_EQ(R.TaintedBlocks, 0u);
  }
}

TEST(ProvenanceTest, DivergenceFindsFirstChainMismatchAndTail) {
  std::vector<DigestRecord> Golden = {makeRec(4, 0x100, 10, 1),
                                      makeRec(9, 0x120, 11, 2),
                                      makeRec(15, 0x140, 12, 3),
                                      makeRec(20, 0x160, 13, 4)};
  // Diverges at ordinal 1, then visits 0x150 twice (one tainted block,
  // counted once) with one checked boundary before detection stops it.
  std::vector<DigestRecord> Faulted = {
      makeRec(4, 0x100, 10, 1), makeRec(9, 0x130, 99, 77),
      makeRec(14, 0x150, 98, 78, /*Checked=*/true),
      makeRec(19, 0x150, 97, 79)};
  PropagationReport R =
      analyzePropagation(Golden, Faulted, PropOutcome::Detected);
  EXPECT_TRUE(R.Diverged);
  EXPECT_EQ(R.Class, PropClass::DetectedAfterDivergence);
  EXPECT_EQ(R.DivergenceOrdinal, 1u);
  EXPECT_EQ(R.DivergenceKey, 9u);
  EXPECT_EQ(R.DivergencePC, 0x130u);
  EXPECT_EQ(R.TaintedBlocks, 2u); // 0x130 and 0x150; repeats dedupe
  EXPECT_EQ(R.ChecksCrossed, 1u);
  EXPECT_EQ(R.InsnsCrossed, 19u - 9u);
}

TEST(ProvenanceTest, StrictCleanPrefixDivergesOnlyForSdc) {
  // A faulted run that stops early with a clean prefix committed no
  // divergent state: Detected stays clean (the check cut it short —
  // that is the machinery working), and a timeout's clean prefix is
  // likewise clean. For an SDC the truncation itself is the divergence:
  // the output went wrong because the run ended here, so the first
  // missing record is the concrete first-divergence point and the tail
  // metrics are zero (nothing executed past it).
  std::vector<DigestRecord> Golden = {makeRec(4, 0x100, 10, 1),
                                      makeRec(9, 0x120, 11, 2),
                                      makeRec(15, 0x140, 12, 3)};
  std::vector<DigestRecord> Prefix(Golden.begin(), Golden.begin() + 2);
  EXPECT_EQ(analyzePropagation(Golden, Prefix, PropOutcome::Detected).Class,
            PropClass::DetectedClean);
  EXPECT_EQ(analyzePropagation(Golden, Prefix, PropOutcome::Timeout).Class,
            PropClass::TimeoutClean);
  PropagationReport R = analyzePropagation(Golden, Prefix, PropOutcome::Sdc);
  EXPECT_EQ(R.Class, PropClass::SdcExplained);
  EXPECT_EQ(R.DivergenceOrdinal, 2u);
  EXPECT_EQ(R.DivergenceKey, 15u);
  EXPECT_EQ(R.DivergencePC, 0x140u);
  EXPECT_EQ(R.TaintedBlocks, 0u);
  EXPECT_EQ(R.ChecksCrossed, 0u);
  EXPECT_EQ(R.InsnsCrossed, 0u);
}

TEST(ProvenanceTest, LongerCleanRunDivergesAtTheExtraRecords) {
  // A faulted run that keeps going past the golden halt diverged at the
  // first extra boundary even though every common record matched.
  std::vector<DigestRecord> Golden = {makeRec(4, 0x100, 10, 1),
                                      makeRec(9, 0x120, 11, 2)};
  std::vector<DigestRecord> Faulted = Golden;
  Faulted.push_back(makeRec(14, 0x140, 12, 3));
  Faulted.push_back(makeRec(19, 0x160, 13, 4));
  PropagationReport R =
      analyzePropagation(Golden, Faulted, PropOutcome::Timeout);
  EXPECT_TRUE(R.Diverged);
  EXPECT_EQ(R.Class, PropClass::TimeoutAfterDivergence);
  EXPECT_EQ(R.DivergenceOrdinal, 2u);
  EXPECT_EQ(R.DivergenceKey, 14u);
  EXPECT_EQ(R.InsnsCrossed, 5u);
}

TEST(ProvenanceTest, MaskedSplitsByFinalStateConvergence) {
  std::vector<DigestRecord> Golden = {makeRec(4, 0x100, 10, 1),
                                      makeRec(9, 0x120, 11, 2),
                                      makeRec(15, 0x140, 12, 3)};
  // Diverged mid-run but the final boundary's state digest matches the
  // golden one: the wrong path reconverged.
  std::vector<DigestRecord> Converged = {makeRec(4, 0x100, 10, 1),
                                         makeRec(9, 0x130, 99, 77),
                                         makeRec(16, 0x140, 12, 78)};
  EXPECT_EQ(analyzePropagation(Golden, Converged, PropOutcome::Masked).Class,
            PropClass::MaskedConverged);
  // Output matched (or there was none) but the final state digest still
  // differs: corruption is latent in registers or memory.
  std::vector<DigestRecord> Latent = {makeRec(4, 0x100, 10, 1),
                                      makeRec(9, 0x130, 99, 77),
                                      makeRec(16, 0x140, 55, 78)};
  EXPECT_EQ(analyzePropagation(Golden, Latent, PropOutcome::Masked).Class,
            PropClass::MaskedLatent);
}

TEST(ProvenanceTest, SdcWithObservedDivergenceIsExplained) {
  std::vector<DigestRecord> Golden = {makeRec(4, 0x100, 10, 1),
                                      makeRec(9, 0x120, 11, 2)};
  std::vector<DigestRecord> Faulted = {makeRec(4, 0x100, 10, 1),
                                       makeRec(9, 0x120, 99, 77)};
  PropagationReport R = analyzePropagation(Golden, Faulted, PropOutcome::Sdc);
  EXPECT_EQ(R.Class, PropClass::SdcExplained);
  EXPECT_EQ(R.DivergenceOrdinal, 1u);
}

//===----------------------------------------------------------------------===//
// GoldenTrace serialization
//===----------------------------------------------------------------------===//

TEST(ProvenanceTest, GoldenTraceRoundTrips) {
  GoldenTrace Out;
  Out.ProgramFp = 0xfeedULL;
  Out.ConfigFp = 0xbeefULL;
  Out.Records = {makeRec(4, 0x100, 10, 1, true),
                 makeRec(9, 0x120, 11, 2, false)};
  std::string Path = scratchFile("roundtrip");
  std::string Error;
  ASSERT_TRUE(Out.save(Path, &Error)) << Error;

  GoldenTrace In;
  ASSERT_TRUE(In.load(Path, &Error)) << Error;
  EXPECT_EQ(In.ProgramFp, Out.ProgramFp);
  EXPECT_EQ(In.ConfigFp, Out.ConfigFp);
  ASSERT_EQ(In.Records.size(), Out.Records.size());
  for (size_t I = 0; I < Out.Records.size(); ++I)
    EXPECT_TRUE(In.Records[I] == Out.Records[I]) << "record " << I;
  std::remove(Path.c_str());
}

TEST(ProvenanceTest, GoldenTraceRejectsCorruptFiles) {
  std::string Path = scratchFile("corrupt");
  {
    std::ofstream F(Path, std::ios::binary);
    F << "CFEDGT01 but then garbage that is far too short";
  }
  GoldenTrace In;
  std::string Error;
  EXPECT_FALSE(In.load(Path, &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_TRUE(In.Records.empty());
  {
    std::ofstream F(Path, std::ios::binary);
    F << "NOTATRACE";
  }
  EXPECT_FALSE(In.load(Path, &Error));
  EXPECT_FALSE(In.load(Path + ".does-not-exist", &Error));
  std::remove(Path.c_str());
}
