//===- AsmTest.cpp - Tests for the assembler ----------------------------------===//

#include "asm/Assembler.h"
#include "isa/Disasm.h"
#include "vm/Layout.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

AsmProgram assembleOk(const std::string &Source) {
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  return Result.Program;
}

Instruction decodeAt(const AsmProgram &Program, size_t Index) {
  auto I = Instruction::decode(&Program.Code[Index * InsnSize]);
  EXPECT_TRUE(I.has_value());
  return *I;
}

} // namespace

TEST(AsmTest, EmptyProgram) {
  AsmProgram P = assembleOk("");
  EXPECT_TRUE(P.Code.empty());
  EXPECT_EQ(P.Entry, CodeBase);
}

TEST(AsmTest, SimpleInstructions) {
  AsmProgram P = assembleOk("movi r1, 42\nadd r2, r1, r1\nhalt\n");
  ASSERT_EQ(P.Code.size(), 3 * InsnSize);
  EXPECT_EQ(decodeAt(P, 0), insn::ri(Opcode::MovI, 1, 42));
  EXPECT_EQ(decodeAt(P, 1), insn::rrr(Opcode::Add, 2, 1, 1));
  EXPECT_EQ(decodeAt(P, 2), insn::none(Opcode::Halt));
}

TEST(AsmTest, CommentsAndBlankLines) {
  AsmProgram P = assembleOk("; header\n\n  # note\nnop ; trailing\n");
  EXPECT_EQ(P.Code.size(), InsnSize);
}

TEST(AsmTest, LabelBranchResolution) {
  AsmProgram P = assembleOk("start:\n  jmp start\n");
  Instruction J = decodeAt(P, 0);
  EXPECT_EQ(J.Op, Opcode::Jmp);
  // Branch back to itself: offset = -(InsnSize).
  EXPECT_EQ(J.Imm, -static_cast<int32_t>(InsnSize));
}

TEST(AsmTest, ForwardLabel) {
  AsmProgram P = assembleOk("  jcc eq, done\n  nop\ndone:\n  halt\n");
  Instruction J = decodeAt(P, 0);
  EXPECT_EQ(J.branchTarget(CodeBase), CodeBase + 2 * InsnSize);
}

TEST(AsmTest, EntryDirective) {
  AsmProgram P = assembleOk("pad: nop\nmain: halt\n.entry main\n");
  EXPECT_EQ(P.Entry, CodeBase + InsnSize);
}

TEST(AsmTest, DataWordAndLabels) {
  AsmProgram P = assembleOk(".data\nvals: .word 1, -2, 0x10\n.code\nhalt\n");
  ASSERT_EQ(P.Data.size(), 24u);
  EXPECT_EQ(P.Symbols.at("vals"), DataBase);
  EXPECT_EQ(P.Data[0], 1);
  EXPECT_EQ(P.Data[8], 0xfe); // -2 little-endian.
  EXPECT_EQ(P.Data[16], 0x10);
}

TEST(AsmTest, DataWordHoldsCodeLabel) {
  AsmProgram P = assembleOk("f: halt\n.data\ntable: .word f\n");
  uint64_t Value = 0;
  for (unsigned I = 0; I < 8; ++I)
    Value |= static_cast<uint64_t>(P.Data[I]) << (8 * I);
  EXPECT_EQ(Value, CodeBase);
}

TEST(AsmTest, AsciiAndSpace) {
  AsmProgram P = assembleOk(".data\ns: .ascii \"hi\\n\"\nbuf: .space 4\n");
  ASSERT_EQ(P.Data.size(), 7u);
  EXPECT_EQ(P.Data[0], 'h');
  EXPECT_EQ(P.Data[2], '\n');
  EXPECT_EQ(P.Symbols.at("buf"), DataBase + 3);
}

TEST(AsmTest, AlignDirective) {
  AsmProgram P = assembleOk(".data\n.byte 1\n.align 8\nw: .word 5\n");
  EXPECT_EQ(P.Symbols.at("w") % 8, 0u);
  EXPECT_EQ(P.Symbols.at("w"), DataBase + 8);
}

TEST(AsmTest, MemoryOperands) {
  AsmProgram P = assembleOk("ld r1, [r2+16]\nst [r3-8], r4\nfld f1, [r5]\n");
  Instruction L = decodeAt(P, 0);
  EXPECT_EQ(L.Op, Opcode::Ld);
  EXPECT_EQ(L.A, 1);
  EXPECT_EQ(L.B, 2);
  EXPECT_EQ(L.Imm, 16);
  Instruction S = decodeAt(P, 1);
  EXPECT_EQ(S.A, 3);
  EXPECT_EQ(S.B, 4);
  EXPECT_EQ(S.Imm, -8);
  Instruction F = decodeAt(P, 2);
  EXPECT_EQ(F.Imm, 0);
}

TEST(AsmTest, MemoryOperandWithLabel) {
  AsmProgram P = assembleOk(".data\nv: .word 9\n.code\nld r1, [r0+v]\n");
  Instruction L = decodeAt(P, 0);
  EXPECT_EQ(static_cast<uint64_t>(L.Imm), DataBase);
}

TEST(AsmTest, CondCodesAndFpRegs) {
  AsmProgram P = assembleOk(
      "cmp r1, r2\njcc le, 0\ncmov r1, r2, gt\nfadd f1, f2, f3\n");
  EXPECT_EQ(decodeAt(P, 1).cond(), CondCode::LE);
  EXPECT_EQ(decodeAt(P, 2).cond(), CondCode::GT);
  Instruction F = decodeAt(P, 3);
  EXPECT_EQ(F.A, 1);
  EXPECT_EQ(F.B, 2);
  EXPECT_EQ(F.C, 3);
}

TEST(AsmTest, CharLiterals) {
  AsmProgram P = assembleOk("movi r1, 'A'\nmovi r2, '\\n'\n");
  EXPECT_EQ(decodeAt(P, 0).Imm, 'A');
  EXPECT_EQ(decodeAt(P, 1).Imm, '\n');
}

TEST(AsmTest, CodeLabelSideTable) {
  AsmProgram P = assembleOk("a: nop\nb: nop\nc: halt\n");
  ASSERT_EQ(P.CodeLabels.size(), 3u);
  EXPECT_EQ(P.CodeLabels[0], CodeBase);
  EXPECT_EQ(P.CodeLabels[2], CodeBase + 2 * InsnSize);
}

TEST(AsmTest, ErrorUnknownMnemonic) {
  AsmResult R = assembleProgram("frobnicate r1\n");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.errorText().find("unknown mnemonic"), std::string::npos);
  EXPECT_EQ(R.Errors[0].Line, 1u);
}

TEST(AsmTest, ErrorUndefinedLabel) {
  AsmResult R = assembleProgram("jmp nowhere\n");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.errorText().find("undefined label"), std::string::npos);
}

TEST(AsmTest, ErrorDuplicateLabel) {
  AsmResult R = assembleProgram("x: nop\nx: nop\n");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.errorText().find("duplicate label"), std::string::npos);
}

TEST(AsmTest, ErrorOperandCount) {
  AsmResult R = assembleProgram("add r1, r2\n");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.errorText().find("expects 3 operand"), std::string::npos);
}

TEST(AsmTest, ErrorReservedRegister) {
  AsmResult R = assembleProgram("movi pcp, 1\n");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.errorText().find("reserved"), std::string::npos);

  AsmOptions Options;
  Options.AllowReservedRegs = true;
  EXPECT_TRUE(assembleProgram("movi pcp, 1\n", Options).succeeded());
}

TEST(AsmTest, ErrorBadConditionCode) {
  AsmResult R = assembleProgram("jcc xx, 0\n");
  ASSERT_FALSE(R.succeeded());
}

TEST(AsmTest, ErrorInstructionInData) {
  AsmResult R = assembleProgram(".data\nnop\n");
  ASSERT_FALSE(R.succeeded());
}

TEST(AsmTest, ErrorUndefinedEntry) {
  AsmResult R = assembleProgram(".entry missing\nhalt\n");
  ASSERT_FALSE(R.succeeded());
}

TEST(AsmTest, MultipleLabelsSameLine) {
  AsmProgram P = assembleOk("a: b: halt\n");
  EXPECT_EQ(P.Symbols.at("a"), P.Symbols.at("b"));
}

TEST(AsmTest, DisassembleRoundTrip) {
  // Assemble, disassemble, re-assemble: encodings must match.
  std::string Source = "movi r1, 5\nmovi r2, 3\nadd r3, r1, r2\n"
                       "cmp r3, r1\njcc gt, 8\nsub r3, r3, r2\nhalt\n";
  AsmProgram P1 = assembleOk(Source);
  std::string Text;
  for (size_t I = 0; I * InsnSize < P1.Code.size(); ++I)
    Text += disassemble(decodeAt(P1, I)) + "\n";
  AsmProgram P2 = assembleOk(Text);
  EXPECT_EQ(P1.Code, P2.Code);
}
