//===- TelemetryTest.cpp - Metrics registry, tracer, profiler tests -------------===//
//
// Covers the telemetry subsystem: counter/gauge/histogram semantics,
// snapshot/reset/merge, ring-buffer wraparound, the Chrome trace_event
// sink (parsed back with a minimal JSON reader), profiler publication,
// and the disabled-telemetry overhead bound on the dispatch hot loop.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "telemetry/Metrics.h"
#include "telemetry/Profile.h"
#include "telemetry/Trace.h"

#include "vm/Loader.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <vector>

using namespace cfed;
using namespace cfed::telemetry;
using cfed::json::JsonParser;
using cfed::json::JsonValue;

namespace {

//===----------------------------------------------------------------------===//
// Counters, gauges, histograms
//===----------------------------------------------------------------------===//

TEST(MetricsTest, CounterBasics) {
  MetricsRegistry Registry;
  Counter &C = Registry.counter("dbt.translations");
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);
  // Lazy registration returns the same instrument at a stable address.
  EXPECT_EQ(&C, &Registry.counter("dbt.translations"));
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(MetricsTest, GaugeBasics) {
  MetricsRegistry Registry;
  Gauge &G = Registry.gauge("vm.predecode_hit_rate");
  G.set(0.75);
  EXPECT_DOUBLE_EQ(G.value(), 0.75);
  G.set(0.5); // Last value wins.
  EXPECT_DOUBLE_EQ(G.value(), 0.5);
  EXPECT_EQ(&G, &Registry.gauge("vm.predecode_hit_rate"));
}

TEST(MetricsTest, HistogramBuckets) {
  MetricsRegistry Registry;
  Histogram &H = Registry.histogram("lat", {10, 100, 1000});
  EXPECT_EQ(H.bounds(), (std::vector<uint64_t>{10, 100, 1000}));
  H.observe(5);     // <= 10
  H.observe(10);    // <= 10 (inclusive)
  H.observe(11);    // <= 100
  H.observe(1000);  // <= 1000
  H.observe(5000);  // overflow
  EXPECT_EQ(H.bucketCounts(), (std::vector<uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 5u + 10 + 11 + 1000 + 5000);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.bucketCounts(), (std::vector<uint64_t>{0, 0, 0, 0}));
}

TEST(MetricsTest, QuantileClampsAndMarksOverflowBucket) {
  MetricsRegistry Registry;
  Histogram &H = Registry.histogram("lat", {10, 100, 1000});

  // Empty histogram: quantiles are 0 and never overflow.
  auto Empty = Registry.snapshot().Histograms[0].second;
  EXPECT_EQ(Empty.quantile(0.5), 0u);
  EXPECT_FALSE(Empty.quantileOverflows(0.5));
  EXPECT_EQ(Empty.quantileText(0.5), "0");

  // All mass in finite buckets: quantiles are bucket upper bounds.
  H.observe(5);
  H.observe(50);
  H.observe(500);
  auto Finite = Registry.snapshot().Histograms[0].second;
  EXPECT_EQ(Finite.quantile(0.5), 100u);
  EXPECT_EQ(Finite.quantile(0.99), 1000u);
  EXPECT_FALSE(Finite.quantileOverflows(0.99));
  EXPECT_EQ(Finite.quantileText(0.99), "1000");

  // Mass lands in the implicit overflow bucket: the numeric quantile
  // clamps to the largest finite bound instead of indexing past the
  // bounds array, and the text form reports the open-ended ">=max".
  H.observe(9999);
  H.observe(9999);
  H.observe(9999);
  auto Over = Registry.snapshot().Histograms[0].second;
  EXPECT_EQ(Over.quantile(0.99), 1000u);
  EXPECT_TRUE(Over.quantileOverflows(0.99));
  EXPECT_FALSE(Over.quantileOverflows(0.25));
  EXPECT_EQ(Over.quantileText(0.99), ">=1000");
  EXPECT_EQ(Over.quantileText(0.25), "100");
}

TEST(MetricsDeathTest, HistogramRejectsBadBounds) {
  // Misconfigured bucket edges are a programming error reported at
  // registration, not silently repaired.
  EXPECT_DEATH({ Histogram H(std::vector<uint64_t>{}); }, "must not be empty");
  EXPECT_DEATH({ Histogram H({100, 10}); }, "strictly increasing");
  EXPECT_DEATH({ Histogram H({10, 10, 100}); }, "strictly increasing");
}

TEST(MetricsTest, SnapshotAndReset) {
  MetricsRegistry Registry;
  Registry.counter("a").inc(3);
  Registry.gauge("b").set(1.5);
  Registry.histogram("h", {10}).observe(7);

  RegistrySnapshot Snap = Registry.snapshot();
  EXPECT_EQ(Snap.counterOr("a"), 3u);
  EXPECT_EQ(Snap.counterOr("missing", 99), 99u);
  EXPECT_DOUBLE_EQ(Snap.gaugeOr("b"), 1.5);
  ASSERT_EQ(Snap.Histograms.size(), 1u);
  EXPECT_EQ(Snap.Histograms[0].second.Count, 1u);
  EXPECT_EQ(Snap.Histograms[0].second.Sum, 7u);

  // The snapshot is a value copy: later bumps don't change it.
  Registry.counter("a").inc();
  EXPECT_EQ(Snap.counterOr("a"), 3u);

  // reset() zeroes values but keeps every instrument registered.
  Registry.reset();
  RegistrySnapshot After = Registry.snapshot();
  EXPECT_EQ(After.counterOr("a"), 0u);
  EXPECT_DOUBLE_EQ(After.gaugeOr("b"), 0.0);
  ASSERT_EQ(After.Counters.size(), 1u);
  ASSERT_EQ(After.Gauges.size(), 1u);
  ASSERT_EQ(After.Histograms.size(), 1u);
  EXPECT_EQ(After.Histograms[0].second.Count, 0u);
}

TEST(MetricsTest, MergeAddsCountersAndFoldsHistograms) {
  MetricsRegistry A;
  A.counter("n").inc(2);
  A.gauge("g").set(1.0);
  A.histogram("h", {10, 100}).observe(5);

  MetricsRegistry B;
  B.counter("n").inc(5);
  B.counter("only_b").inc(1);
  B.gauge("g").set(2.0);
  B.histogram("h", {10, 100}).observe(50);
  B.histogram("h", {10, 100}).observe(500);

  A.merge(B.snapshot());
  RegistrySnapshot Snap = A.snapshot();
  EXPECT_EQ(Snap.counterOr("n"), 7u);
  EXPECT_EQ(Snap.counterOr("only_b"), 1u);
  EXPECT_DOUBLE_EQ(Snap.gaugeOr("g"), 2.0); // Gauge takes incoming value.
  ASSERT_EQ(Snap.Histograms.size(), 1u);
  EXPECT_EQ(Snap.Histograms[0].second.Count, 3u);
  EXPECT_EQ(Snap.Histograms[0].second.Sum, 5u + 50 + 500);
  EXPECT_EQ(Snap.Histograms[0].second.Buckets,
            (std::vector<uint64_t>{1, 1, 1}));
}

TEST(MetricsTest, JsonIsSingleLineAndParses) {
  MetricsRegistry Registry;
  Registry.counter("dbt.translations").inc(13);
  Registry.gauge("rate").set(0.25);
  Registry.histogram("h", {10}).observe(3);
  std::string Json = Registry.snapshot().toJson();
  EXPECT_EQ(Json.find('\n'), std::string::npos);

  JsonValue Root;
  ASSERT_TRUE(JsonParser(Json).parse(Root));
  EXPECT_EQ(Root["counters"]["dbt.translations"].Num, 13.0);
  EXPECT_DOUBLE_EQ(Root["gauges"]["rate"].Num, 0.25);
  EXPECT_EQ(Root["histograms"]["h"]["count"].Num, 1.0);
}

TEST(MetricsTest, CsvHasOneRowPerInstrument) {
  MetricsRegistry Registry;
  Registry.counter("a").inc(1);
  Registry.gauge("b").set(2.0);
  std::string Csv = Registry.snapshot().toCsv();
  EXPECT_NE(Csv.find("counter,a,1"), std::string::npos);
  EXPECT_NE(Csv.find("gauge,b,"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Event tracer
//===----------------------------------------------------------------------===//

TEST(TraceTest, RingWraparoundKeepsNewestOldestFirst) {
  EventTracer Tracer(4);
  for (uint64_t I = 0; I < 10; ++I)
    Tracer.record(I, TraceEventKind::BlockTranslated, nullptr, 0x10000 + I);
  EXPECT_EQ(Tracer.size(), 4u);
  EXPECT_EQ(Tracer.capacity(), 4u);
  EXPECT_EQ(Tracer.dropped(), 6u);
  EXPECT_EQ(Tracer.totalRecorded(), 10u);
  std::vector<TraceEvent> Events = Tracer.events();
  ASSERT_EQ(Events.size(), 4u);
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_EQ(Events[I].Ts, 6 + I); // Oldest surviving record first.
    EXPECT_EQ(Events[I].Addr, 0x10006 + I);
  }
  Tracer.clear();
  EXPECT_EQ(Tracer.size(), 0u);
  EXPECT_EQ(Tracer.dropped(), 0u);
}

TEST(TraceTest, ChromeJsonParsesBack) {
  EventTracer Tracer(8);
  Tracer.record(100, TraceEventKind::BlockTranslated, nullptr, 0x10040, 7);
  Tracer.record(250, TraceEventKind::TrapRaised, "C", 0x10080);
  Tracer.record(300, TraceEventKind::Rollback, nullptr, 0x10080, 2);

  JsonValue Root;
  std::string Json = Tracer.renderChromeJson();
  ASSERT_TRUE(JsonParser(Json).parse(Root)) << Json;
  const JsonValue &Events = Root["traceEvents"];
  ASSERT_EQ(Events.K, JsonValue::Array);
  ASSERT_EQ(Events.Items.size(), 3u);

  const JsonValue &First = Events.Items[0];
  EXPECT_EQ(First["name"].Str, "block-translated");
  EXPECT_EQ(First["ph"].Str, "i");
  EXPECT_EQ(First["ts"].Num, 100.0);
  EXPECT_EQ(First["args"]["addr"].Str, "0x10040");
  EXPECT_EQ(First["args"]["arg"].Num, 7.0);

  const JsonValue &Second = Events.Items[1];
  EXPECT_EQ(Second["name"].Str, "trap-raised");
  EXPECT_EQ(Second["args"]["cat"].Str, "C");

  // No wraparound: the dropped-events key must be absent.
  EXPECT_EQ(Root.Fields.count("droppedEvents"), 0u);
}

TEST(TraceTest, ChromeJsonReportsDrops) {
  EventTracer Tracer(2);
  for (uint64_t I = 0; I < 5; ++I)
    Tracer.record(I, TraceEventKind::BlockChained);
  JsonValue Root;
  ASSERT_TRUE(JsonParser(Tracer.renderChromeJson()).parse(Root));
  EXPECT_EQ(Root["traceEvents"].Items.size(), 2u);
  EXPECT_EQ(Root["droppedEvents"].Num, 3.0);
}

TEST(TraceTest, TextRenderNamesEveryKind) {
  EventTracer Tracer(16);
  Tracer.record(1, TraceEventKind::CheckpointTaken, nullptr, 0x10000, 3);
  Tracer.record(2, TraceEventKind::WatchdogFire);
  std::string Text = Tracer.renderText();
  EXPECT_NE(Text.find("checkpoint-taken"), std::string::npos);
  EXPECT_NE(Text.find("watchdog-fire"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Phase profiler
//===----------------------------------------------------------------------===//

TEST(ProfileTest, PublishesGaugesPerActivePhase) {
  PhaseProfiler Profiler;
  Profiler.add(Phase::Translate, 1000);
  Profiler.add(Phase::Translate, 500);
  Profiler.add(Phase::Execute, 8000);
  EXPECT_EQ(Profiler.totalNs(Phase::Translate), 1500u);
  EXPECT_EQ(Profiler.callCount(Phase::Translate), 2u);

  MetricsRegistry Registry;
  Profiler.publishTo(Registry);
  RegistrySnapshot Snap = Registry.snapshot();
  EXPECT_DOUBLE_EQ(Snap.gaugeOr("profile.translate.ns"), 1500.0);
  EXPECT_DOUBLE_EQ(Snap.gaugeOr("profile.translate.calls"), 2.0);
  EXPECT_DOUBLE_EQ(Snap.gaugeOr("profile.execute.ns"), 8000.0);
  // Phases that never ran publish nothing.
  EXPECT_DOUBLE_EQ(Snap.gaugeOr("profile.recover.ns", -1.0), -1.0);

  Profiler.reset();
  EXPECT_EQ(Profiler.totalNs(Phase::Translate), 0u);
  EXPECT_EQ(Profiler.callCount(Phase::Execute), 0u);
}

TEST(ProfileTest, NullScopeIsNoop) {
  { PhaseProfiler::Scope S(nullptr, Phase::Check); }
  PhaseProfiler Profiler;
  {
    PhaseProfiler::Scope S(&Profiler, Phase::Check);
  }
  EXPECT_EQ(Profiler.callCount(Phase::Check), 1u);
}

//===----------------------------------------------------------------------===//
// Overhead bound: disabled telemetry must not tax the dispatch loop
//===----------------------------------------------------------------------===//

// The per-instruction dispatch loop keeps plain fields and publishes
// them only at sync points (DESIGN.md §8), so a run that ends with
// publishMetrics() must cost within 2% of one that never touches
// telemetry. Timing is noisy under CI: take the min of several
// interleaved repeats and retry the whole measurement before failing.
TEST(TelemetryOverheadTest, DisabledTelemetryWithinTwoPercent) {
  AsmProgram Program = assembleWorkload("181.mcf");
  constexpr uint64_t Budget = 200000;

  auto TimedRun = [&Program](bool WithTelemetry) {
    Memory Mem;
    Interpreter Interp(Mem);
    loadProgram(Program, LoadMode::Native, Mem, Interp.state());
    auto Begin = std::chrono::steady_clock::now();
    Interp.run(Budget);
    if (WithTelemetry) {
      MetricsRegistry Registry;
      Interp.publishMetrics(Registry);
    }
    auto End = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(End - Begin).count();
  };

  double Overhead = 0.0;
  for (int Attempt = 0; Attempt < 3; ++Attempt) {
    double MinBase = 1e30, MinTele = 1e30;
    for (int Rep = 0; Rep < 5; ++Rep) {
      MinBase = std::min(MinBase, TimedRun(false));
      MinTele = std::min(MinTele, TimedRun(true));
    }
    Overhead = MinTele / MinBase - 1.0;
    if (Overhead <= 0.02)
      break;
  }
  EXPECT_LE(Overhead, 0.02)
      << "disabled-telemetry overhead on the dispatch hot loop: "
      << Overhead * 100 << "%";
}

} // namespace
