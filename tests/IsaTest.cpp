//===- IsaTest.cpp - Tests for the VISA definition ----------------------------===//

#include "isa/Disasm.h"
#include "isa/Isa.h"

#include <gtest/gtest.h>

using namespace cfed;

TEST(IsaTest, EncodeDecodeRoundTripAllOpcodes) {
  for (unsigned OpIndex = 0; OpIndex < getNumOpcodes(); ++OpIndex) {
    Instruction I(static_cast<Opcode>(OpIndex), 3, 7, 11, -12345);
    uint8_t Buffer[InsnSize];
    I.encode(Buffer);
    auto Decoded = Instruction::decode(Buffer);
    ASSERT_TRUE(Decoded.has_value());
    EXPECT_EQ(*Decoded, I);
  }
}

TEST(IsaTest, DecodeRejectsUndefinedOpcode) {
  uint8_t Buffer[InsnSize] = {0xff, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(Instruction::decode(Buffer).has_value());
}

TEST(IsaTest, DecodeRejectsOutOfRangeOperands) {
  // Garbage bytes reached by wild jumps must not decode into
  // instructions addressing nonexistent registers (the #UD analogue;
  // also what keeps the interpreter's register file in bounds).
  uint8_t Buffer[InsnSize];
  insn::rrr(Opcode::Add, 1, 2, 3).encode(Buffer);
  Buffer[1] = 200; // rd out of range.
  EXPECT_FALSE(Instruction::decode(Buffer).has_value());

  insn::rrr(Opcode::FAdd, 1, 2, 3).encode(Buffer);
  Buffer[2] = NumFpRegs; // fp reg out of range.
  EXPECT_FALSE(Instruction::decode(Buffer).has_value());

  insn::jcc(CondCode::EQ, 8).encode(Buffer);
  Buffer[1] = NumCondCodes; // condition code out of range.
  EXPECT_FALSE(Instruction::decode(Buffer).has_value());

  // Unused fields may hold anything (they are ignored).
  insn::none(Opcode::Ret).encode(Buffer);
  Buffer[1] = 0xee;
  EXPECT_TRUE(Instruction::decode(Buffer).has_value());
}

TEST(IsaTest, ImmEncodingIsLittleEndianTwosComplement) {
  Instruction I(Opcode::MovI, 1, 0, 0, -2);
  uint8_t Buffer[InsnSize];
  I.encode(Buffer);
  EXPECT_EQ(Buffer[4], 0xfe);
  EXPECT_EQ(Buffer[5], 0xff);
  EXPECT_EQ(Buffer[6], 0xff);
  EXPECT_EQ(Buffer[7], 0xff);
}

TEST(IsaTest, BranchTargetRelativeToNextInsn) {
  Instruction J = insn::i(Opcode::Jmp, 16);
  EXPECT_EQ(J.branchTarget(0x1000), 0x1000u + 8 + 16);
  Instruction Back = insn::i(Opcode::Jmp, -24);
  EXPECT_EQ(Back.branchTarget(0x1000), 0x1000u + 8 - 24);
}

TEST(IsaTest, OffsetForInvertsBranchTarget) {
  uint64_t InsnAddr = 0x20000;
  uint64_t Target = 0x20100;
  int32_t Offset = Instruction::offsetFor(InsnAddr, Target);
  Instruction J = insn::i(Opcode::Jmp, Offset);
  EXPECT_EQ(J.branchTarget(InsnAddr), Target);
}

TEST(IsaTest, CondFieldBindings) {
  Instruction J = insn::jcc(CondCode::LE, 8);
  EXPECT_EQ(J.cond(), CondCode::LE);
  Instruction M = insn::cmov(2, 3, CondCode::GT);
  EXPECT_EQ(M.cond(), CondCode::GT);
  EXPECT_EQ(M.A, 2);
  EXPECT_EQ(M.B, 3);
  Instruction S = insn::setcc(4, CondCode::NE);
  EXPECT_EQ(S.cond(), CondCode::NE);
}

TEST(IsaTest, OpKindClassification) {
  EXPECT_EQ(getOpcodeKind(Opcode::Add), OpKind::None);
  EXPECT_EQ(getOpcodeKind(Opcode::Jmp), OpKind::Jump);
  EXPECT_EQ(getOpcodeKind(Opcode::Jcc), OpKind::CondJump);
  EXPECT_EQ(getOpcodeKind(Opcode::Jzr), OpKind::RegZeroJump);
  EXPECT_EQ(getOpcodeKind(Opcode::Ret), OpKind::Ret);
  EXPECT_EQ(getOpcodeKind(Opcode::Tramp), OpKind::DbtExit);
}

TEST(IsaTest, HasBranchOffset) {
  EXPECT_TRUE(hasBranchOffset(Opcode::Jmp));
  EXPECT_TRUE(hasBranchOffset(Opcode::Jcc));
  EXPECT_TRUE(hasBranchOffset(Opcode::Jzr));
  EXPECT_TRUE(hasBranchOffset(Opcode::Jnzr));
  EXPECT_TRUE(hasBranchOffset(Opcode::Call));
  EXPECT_FALSE(hasBranchOffset(Opcode::JmpR));
  EXPECT_FALSE(hasBranchOffset(Opcode::Ret));
  EXPECT_FALSE(hasBranchOffset(Opcode::Add));
  EXPECT_FALSE(hasBranchOffset(Opcode::Tramp));
}

TEST(IsaTest, FlagNeutralInstrumentationOps) {
  // The signature sequences rely on these not clobbering FLAGS
  // (paper Section 5.1).
  EXPECT_FALSE(opcodeWritesFlags(Opcode::Lea));
  EXPECT_FALSE(opcodeWritesFlags(Opcode::Mov));
  EXPECT_FALSE(opcodeWritesFlags(Opcode::MovI));
  EXPECT_FALSE(opcodeWritesFlags(Opcode::CMov));
  EXPECT_FALSE(opcodeWritesFlags(Opcode::SetCC));
  EXPECT_FALSE(opcodeWritesFlags(Opcode::Jzr));
  // And these do, which is why xor is not used for updates.
  EXPECT_TRUE(opcodeWritesFlags(Opcode::Xor));
  EXPECT_TRUE(opcodeWritesFlags(Opcode::XorI));
}

TEST(IsaTest, CondCodeNegation) {
  for (unsigned I = 0; I < NumCondCodes; ++I) {
    CondCode CC = static_cast<CondCode>(I);
    EXPECT_EQ(negateCondCode(negateCondCode(CC)), CC);
  }
}

TEST(IsaTest, CondCodeNegationIsComplementary) {
  // For every flags value, cc and !cc must disagree.
  for (unsigned Bits = 0; Bits < 16; ++Bits) {
    Flags F = Flags::unpack(static_cast<uint8_t>(Bits));
    for (unsigned I = 0; I < NumCondCodes; ++I) {
      CondCode CC = static_cast<CondCode>(I);
      EXPECT_NE(evalCondCode(CC, F), evalCondCode(negateCondCode(CC), F));
    }
  }
}

TEST(IsaTest, CondCodeParsing) {
  for (unsigned I = 0; I < NumCondCodes; ++I) {
    CondCode CC = static_cast<CondCode>(I);
    auto Parsed = parseCondCode(getCondCodeName(CC));
    ASSERT_TRUE(Parsed.has_value());
    EXPECT_EQ(*Parsed, CC);
  }
  EXPECT_FALSE(parseCondCode("zz").has_value());
}

TEST(IsaTest, FlagsPackUnpackRoundTrip) {
  for (unsigned Bits = 0; Bits < 16; ++Bits) {
    Flags F = Flags::unpack(static_cast<uint8_t>(Bits));
    EXPECT_EQ(F.pack(), Bits);
  }
}

TEST(IsaTest, FlagBitFlip) {
  Flags F;
  Flags Flipped = F.withBitFlipped(0);
  EXPECT_TRUE(Flipped.ZF);
  EXPECT_EQ(Flipped.withBitFlipped(0), F);
  EXPECT_TRUE(F.withBitFlipped(3).OF);
}

TEST(IsaTest, RegisterNames) {
  EXPECT_EQ(getRegName(0), "r0");
  EXPECT_EQ(getRegName(RegSP), "sp");
  EXPECT_EQ(getRegName(RegPCP), "pcp");
  EXPECT_EQ(getRegName(RegRTS), "rts");
  EXPECT_EQ(parseRegName("r7").value(), 7u);
  EXPECT_EQ(parseRegName("sp").value(), unsigned(RegSP));
  EXPECT_EQ(parseRegName("aux").value(), unsigned(RegAUX));
  EXPECT_EQ(parseRegName("r63").value(), 63u); // Shadow register space.
  EXPECT_FALSE(parseRegName("r64").has_value());
  EXPECT_FALSE(parseRegName("x1").has_value());
  EXPECT_FALSE(parseRegName("r1x").has_value());
}

TEST(DisasmTest, BasicFormats) {
  EXPECT_EQ(disassemble(insn::rrr(Opcode::Add, 1, 2, 3)), "add r1, r2, r3");
  EXPECT_EQ(disassemble(insn::ri(Opcode::MovI, 4, -7)), "movi r4, -7");
  EXPECT_EQ(disassemble(insn::jcc(CondCode::NE, 16)), "jcc ne, 16");
  EXPECT_EQ(disassemble(insn::none(Opcode::Ret)), "ret");
  EXPECT_EQ(disassemble(insn::cmov(1, 2, CondCode::LE)), "cmov r1, r2, le");
  Instruction Load = insn::rri(Opcode::Ld, 1, 2, 40);
  EXPECT_EQ(disassemble(Load), "ld r1, [r2+40]");
  Instruction Store(Opcode::St, 2, 1, 0, -8);
  EXPECT_EQ(disassemble(Store), "st [r2-8], r1");
}

TEST(DisasmTest, BranchTargetComment) {
  std::string Text = disassemble(insn::i(Opcode::Jmp, 8), 0x1000);
  EXPECT_NE(Text.find("0x1010"), std::string::npos);
}

TEST(DisasmTest, RangeMarksBadInsn) {
  uint8_t Code[16] = {};
  insn::none(Opcode::Nop).encode(Code);
  Code[8] = 0xfe; // Undefined opcode.
  std::string Text = disassembleRange(Code, sizeof(Code), 0x2000);
  EXPECT_NE(Text.find("nop"), std::string::npos);
  EXPECT_NE(Text.find(".bad"), std::string::npos);
}

TEST(IsaTest, CostModelShape) {
  // The performance figures depend on these relative costs: the paper's
  // explanation of fp benchmarks ("more time-consuming instructions") and
  // of Jcc vs CMOVcc updates (Figure 14).
  EXPECT_GT(getOpcodeCost(Opcode::FAdd), getOpcodeCost(Opcode::Add));
  EXPECT_GT(getOpcodeCost(Opcode::Div), 4 * getOpcodeCost(Opcode::Add));
  EXPECT_GT(getOpcodeCost(Opcode::CMov), getOpcodeCost(Opcode::Lea));
  // The dependency-carrying lea chains cost more than immediate moves —
  // the paper's reason ECF's updates are cheapest.
  EXPECT_GT(getOpcodeCost(Opcode::Lea), getOpcodeCost(Opcode::MovI));
  EXPECT_GE(getOpcodeCost(Opcode::TrampR), getOpcodeCost(Opcode::Tramp));
}
