//===- CfgTest.cpp - Tests for CFG construction -------------------------------===//

#include "asm/Assembler.h"
#include "cfg/Cfg.h"
#include "vm/Layout.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

Cfg buildCfg(const std::string &Source) {
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  const AsmProgram &P = Result.Program;
  return Cfg::build(P.Code.data(), P.Code.size(), CodeBase, P.Entry,
                    P.CodeLabels);
}

} // namespace

TEST(CfgTest, SingleBlock) {
  Cfg G = buildCfg("movi r1, 1\nmovi r2, 2\nhalt\n");
  ASSERT_EQ(G.blocks().size(), 1u);
  const BasicBlock &B = G.blocks().begin()->second;
  EXPECT_EQ(B.Addr, CodeBase);
  EXPECT_EQ(B.Insns.size(), 3u);
  EXPECT_EQ(B.TermKind, OpKind::Halt);
  EXPECT_FALSE(B.HasTakenTarget);
  EXPECT_FALSE(B.HasFallThrough);
}

TEST(CfgTest, DiamondShape) {
  Cfg G = buildCfg("cmp r1, r2\njcc lt, left\n"
                   "right:\nmovi r3, 1\njmp join\n"
                   "left:\nmovi r3, 2\n"
                   "join:\nhalt\n");
  // Blocks: entry(cond), right, left, join.
  ASSERT_EQ(G.blocks().size(), 4u);
  const BasicBlock *EntryBlock = G.blockAt(CodeBase);
  ASSERT_NE(EntryBlock, nullptr);
  EXPECT_TRUE(EntryBlock->isConditional());
  EXPECT_TRUE(EntryBlock->HasTakenTarget);
  EXPECT_TRUE(EntryBlock->HasFallThrough);
  const BasicBlock *Left = G.blockAt(EntryBlock->TakenTarget);
  ASSERT_NE(Left, nullptr);
  // Left block falls into join.
  EXPECT_EQ(Left->TermKind, OpKind::None);
  EXPECT_TRUE(Left->HasFallThrough);
}

TEST(CfgTest, LoopBackEdge) {
  Cfg G = buildCfg("movi r1, 5\nloop:\naddi r1, r1, -1\njcc ne, loop\n"
                   "halt\n");
  const BasicBlock *LoopBlock = G.blockAt(CodeBase + InsnSize);
  ASSERT_NE(LoopBlock, nullptr);
  EXPECT_TRUE(LoopBlock->hasBackEdge());
  const BasicBlock *EntryBlock = G.blockAt(CodeBase);
  ASSERT_NE(EntryBlock, nullptr);
  EXPECT_FALSE(EntryBlock->hasBackEdge());
}

TEST(CfgTest, BlockContaining) {
  Cfg G = buildCfg("movi r1, 1\nmovi r2, 2\nmovi r3, 3\nhalt\n");
  const BasicBlock *B = G.blockContaining(CodeBase + 2 * InsnSize);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->Addr, CodeBase);
  EXPECT_EQ(G.blockContaining(CodeBase + 4 * InsnSize), nullptr);
}

TEST(CfgTest, LabelsCreateLeaders) {
  // A label in the middle of straight-line code splits the block because
  // it may be an indirect-branch target.
  Cfg G = buildCfg("movi r1, 1\nmid:\nmovi r2, 2\nhalt\n");
  EXPECT_EQ(G.blocks().size(), 2u);
  const BasicBlock *First = G.blockAt(CodeBase);
  ASSERT_NE(First, nullptr);
  EXPECT_EQ(First->TermKind, OpKind::None);
  EXPECT_TRUE(First->HasFallThrough);
  EXPECT_EQ(First->FallThrough, CodeBase + InsnSize);
}

TEST(CfgTest, CallBlockHasNoFallThroughEdge) {
  Cfg G = buildCfg(".entry main\nf:\nret\nmain:\ncall f\nhalt\n");
  const BasicBlock *CallBlock = G.blockAt(CodeBase + InsnSize);
  ASSERT_NE(CallBlock, nullptr);
  EXPECT_EQ(CallBlock->TermKind, OpKind::Call);
  EXPECT_TRUE(CallBlock->HasTakenTarget);
  EXPECT_EQ(CallBlock->TakenTarget, CodeBase);
  EXPECT_FALSE(CallBlock->HasFallThrough);
}

TEST(CfgTest, RetSuccessors) {
  Cfg G = buildCfg(".entry main\n"
                   "f:\nmovi r1, 1\nret\n"
                   "main:\ncall f\nmovi r2, 2\ncall f\nhalt\n");
  ASSERT_TRUE(G.computeRetSuccessors());
  const BasicBlock *RetBlock = G.blockAt(CodeBase);
  ASSERT_NE(RetBlock, nullptr);
  ASSERT_EQ(RetBlock->RetSuccessors.size(), 2u);
  // Return sites: after each call.
  const BasicBlock *Main = G.blockAt(G.entry());
  ASSERT_NE(Main, nullptr);
  EXPECT_EQ(RetBlock->RetSuccessors[0], Main->endAddr());
}

TEST(CfgTest, RetSuccessorsFailsOnIndirectCall) {
  Cfg G = buildCfg(".entry main\nf:\nret\nmain:\nmovi r1, f\ncallr r1\n"
                   "halt\n");
  EXPECT_FALSE(G.computeRetSuccessors());
}

TEST(CfgTest, Predecessors) {
  Cfg G = buildCfg("a:\ncmp r1, r2\njcc eq, c\n"
                   "b:\njmp c\n"
                   "c:\nhalt\n");
  const BasicBlock *C = G.blockAt(CodeBase + 3 * InsnSize);
  ASSERT_NE(C, nullptr);
  std::vector<uint64_t> Preds = G.predecessorsOf(C->Addr);
  EXPECT_EQ(Preds.size(), 2u);
}

TEST(CfgTest, DotOutput) {
  Cfg G = buildCfg("loop:\naddi r1, r1, -1\njcc ne, loop\nhalt\n");
  std::string Dot = G.toDot();
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("back-edge"), std::string::npos);
}

TEST(CfgTest, FlagDisciplineCleanProgram) {
  Cfg G = buildCfg("cmp r1, r2\njcc lt, t\nmovi r3, 0\nhalt\n"
                   "t:\ncmpi r4, 5\ncmov r5, r6, eq\nhalt\n");
  EXPECT_TRUE(G.findFlagDisciplineViolations().empty());
}

TEST(CfgTest, FlagDisciplineViolationDetected) {
  // The jcc in block t consumes flags set in the previous block: a
  // cross-block flag dependence the discipline forbids.
  Cfg G = buildCfg("cmp r1, r2\njmp t\nt:\njcc lt, u\nu:\nhalt\n");
  std::vector<uint64_t> Violations = G.findFlagDisciplineViolations();
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(Violations[0], CodeBase + 2 * InsnSize);
}

TEST(CfgTest, FlagDisciplineCmovWithoutCompare) {
  Cfg G = buildCfg("movi r1, 1\ncmov r2, r1, eq\nhalt\n");
  EXPECT_EQ(G.findFlagDisciplineViolations().size(), 1u);
}

TEST(CfgTest, FlagDisciplineIgnoresRegisterBranches) {
  // Jzr/Jnzr read a register, not flags: no compare needed.
  Cfg G = buildCfg("movi r1, 0\njzr r1, t\nt:\nhalt\n");
  EXPECT_TRUE(G.findFlagDisciplineViolations().empty());
}

TEST(CfgTest, CodeBounds) {
  Cfg G = buildCfg("nop\nhalt\n");
  EXPECT_EQ(G.codeBase(), CodeBase);
  EXPECT_EQ(G.codeEnd(), CodeBase + 2 * InsnSize);
}
