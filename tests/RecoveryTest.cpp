//===- RecoveryTest.cpp - Tests for checkpoint/rollback recovery ---------------===//

#include "fault/Campaign.h"
#include "recovery/Recovery.h"
#include "vm/Layout.h"
#include "vm/Loader.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

AsmProgram assembleOk(const std::string &Source) {
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  return Result.Program;
}

AsmProgram randomProgram(uint64_t Seed) {
  RandomProgramOptions Options;
  Options.Seed = Seed;
  return assembleOk(generateRandomProgram(Options));
}

/// Golden output hash of a clean DBT run.
uint64_t goldenHashOf(const AsmProgram &Program, DbtConfig Config) {
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  EXPECT_TRUE(Translator.load(Program, Interp.state()))
      << Translator.loadError();
  StopInfo Stop = Translator.run(Interp, 10000000);
  EXPECT_EQ(Stop.Kind, StopKind::Halted);
  return hashOutput(Interp.output());
}

/// Persistent stuck-at fault: flips one offset bit of *every* executed
/// offset branch in the code cache. Rollback and retranslation cannot
/// shake it — only abandoning the cache (interpreter fallback) can.
class StuckAtCacheBranchFault : public FaultHook {
public:
  explicit StuckAtCacheBranchFault(unsigned Bit) : Bit(Bit) {}
  void apply(uint64_t InsnAddr, Instruction &I, Flags &,
             const CpuState &) override {
    if (!isCacheAddr(InsnAddr))
      return;
    I.Imm = static_cast<int32_t>(static_cast<uint32_t>(I.Imm) ^ (1u << Bit));
  }

private:
  unsigned Bit;
};

} // namespace

TEST(RecoveryTest, CleanRunTakesCheckpointsWithoutRollbacks) {
  AsmProgram Program = randomProgram(5);
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  uint64_t Golden = goldenHashOf(Program, Config);

  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  RecoveryConfig RC;
  RC.CheckpointInterval = 500;
  RecoveryManager Manager(Interp, Translator, RC);
  RecoveryReport Report = Manager.run(10000000);

  EXPECT_TRUE(Report.Completed);
  EXPECT_EQ(Report.NumRollbacks, 0u);
  EXPECT_EQ(Report.NumWatchdogFires, 0u);
  EXPECT_GT(Report.NumCheckpoints, 1u);
  EXPECT_FALSE(Report.Degraded);
  EXPECT_FALSE(Report.InterpreterFallback);
  EXPECT_TRUE(Report.FirstDetection.empty()) << Report.FirstDetection;
  EXPECT_EQ(hashOutput(Interp.output()), Golden);
}

TEST(RecoveryTest, TransientFaultRollsBackToGoldenOutput) {
  // A single injected branch fault is transient: the injection hook
  // latches after one firing, so rollback + re-execution is clean and
  // must reproduce the golden output.
  AsmProgram Program = randomProgram(4);
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  FaultCampaign Campaign(Program, Config);
  ASSERT_TRUE(Campaign.prepare(10000000));

  RecoveryConfig RC;
  RC.CheckpointInterval = 1000;
  unsigned Recovered = 0, Examined = 0;
  for (const PlannedFault &Fault :
       Campaign.plan(40, 7, SiteClass::OriginalOnly)) {
    if (Fault.Category == BranchErrorCategory::NoError)
      continue;
    ++Examined;
    auto Injection = Campaign.injectWithRecovery(Fault, RC);
    if (Injection.Result == Outcome::Recovered) {
      EXPECT_GT(Injection.Recovery.NumRollbacks, 0u);
      EXPECT_FALSE(Injection.Recovery.FirstDetection.empty());
      ++Recovered;
    }
  }
  ASSERT_GT(Examined, 0u);
  EXPECT_GT(Recovered, 0u);
}

TEST(RecoveryTest, SignatureDetectedCategoryDEFaultsMostlyRecover) {
  // Acceptance gate: >= 90% of the faults the baseline campaign reports
  // as signature-detected in categories D and E must classify as
  // Recovered (golden hash reproduced) when re-run under recovery. The
  // fault sets are identical by construction (same plan + selection).
  AsmProgram Program = randomProgram(4);
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;

  FaultCampaign Baseline(Program, Config);
  ASSERT_TRUE(Baseline.prepare(10000000));
  CampaignResult Plain = Baseline.run(60, 11, SiteClass::OriginalOnly);

  FaultCampaign WithRecovery(Program, Config);
  ASSERT_TRUE(WithRecovery.prepare(10000000));
  RecoveryConfig RC;
  RC.CheckpointInterval = 2000;
  CampaignResult Rec =
      WithRecovery.runWithRecovery(60, 11, SiteClass::OriginalOnly, RC);

  uint64_t SigDetected = 0, Survived = 0;
  for (BranchErrorCategory Cat :
       {BranchErrorCategory::D, BranchErrorCategory::E}) {
    SigDetected += Plain.of(Cat).DetectedSig;
    Survived += Rec.of(Cat).Recovered;
  }
  ASSERT_GT(SigDetected, 0u);
  EXPECT_GE(Survived * 10, SigDetected * 9)
      << "recovered " << Survived << " of " << SigDetected
      << " signature-detected D/E faults";
}

TEST(RecoveryTest, RecoveryCampaignIsJobCountInvariant) {
  AsmProgram Program = randomProgram(9);
  DbtConfig Config;
  Config.Tech = Technique::Rcf;
  RecoveryConfig RC;
  RC.CheckpointInterval = 2000;

  auto RunWith = [&](unsigned Jobs) {
    FaultCampaign Campaign(Program, Config);
    EXPECT_TRUE(Campaign.prepare(10000000));
    return Campaign.runWithRecovery(30, 23, SiteClass::Any, RC, Jobs);
  };
  CampaignResult Serial = RunWith(1);
  CampaignResult Parallel4 = RunWith(4);
  CampaignResult Parallel7 = RunWith(7);
  EXPECT_GT(Serial.Injections, 0u);
  EXPECT_TRUE(Serial == Parallel4);
  EXPECT_TRUE(Serial == Parallel7);
}

TEST(RecoveryTest, WatchdogFiresInsideChainedSuperblockAndSelfHeals) {
  // Under the End policy a long loop nest runs check-free; with chaining
  // and superblocks on, it spins entirely inside the cache without a
  // single dispatch. A tight watchdog bound must fire mid-superblock,
  // and the degradation ladder (conservative retranslation with AllBB
  // checks) must let the run complete all the same.
  RandomProgramOptions Options;
  Options.Seed = 13;
  Options.LoopTrip = 40;
  AsmProgram Program = assembleOk(generateRandomProgram(Options));

  DbtConfig Config;
  Config.Tech = Technique::Rcf;
  Config.Policy = CheckPolicy::End;
  Config.SuperblockLimit = 4;
  Config.ChainDirectExits = true;
  uint64_t Golden = goldenHashOf(Program, Config);

  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  RecoveryConfig RC;
  RC.CheckpointInterval = 200;
  RC.WatchdogBound = 60; // Far below the loop nest's check-free stretch.
  RecoveryManager Manager(Interp, Translator, RC);
  RecoveryReport Report = Manager.run(10000000);

  EXPECT_GT(Report.NumWatchdogFires, 0u);
  EXPECT_TRUE(Report.Degraded);
  EXPECT_TRUE(Report.Completed) << getTrapKindName(Report.FinalStop.Trap);
  EXPECT_EQ(hashOutput(Interp.output()), Golden);
  EXPECT_GT(Translator.degradeCount(), 0u);
  EXPECT_FALSE(Report.FirstDetection.empty());
}

TEST(RecoveryTest, PersistentFaultFallsBackToInterpreterAndCompletes) {
  // A stuck-at fault on every cache branch was previously fatal: the DBT
  // detects, terminates, and rerunning cannot help because the fault
  // rides the code cache itself. The ladder must end in interpreter-only
  // execution (guest pages, no cache, fault can't fire) and complete
  // with the golden output.
  AsmProgram Program = randomProgram(6);
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  uint64_t Golden = goldenHashOf(Program, Config);

  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  StuckAtCacheBranchFault Fault(20); // Lands far outside any block.
  Interp.setFaultHook(&Fault);

  RecoveryConfig RC;
  RC.CheckpointInterval = 1000;
  RC.MaxSiteRollbacks = 1;
  RC.MaxTotalRollbacks = 3;
  RecoveryManager Manager(Interp, Translator, RC);
  RecoveryReport Report = Manager.run(10000000);

  EXPECT_TRUE(Report.InterpreterFallback);
  EXPECT_TRUE(Report.Completed) << getTrapKindName(Report.FinalStop.Trap);
  EXPECT_EQ(hashOutput(Interp.output()), Golden);
  EXPECT_GT(Report.NumRollbacks, RC.MaxTotalRollbacks);
  EXPECT_FALSE(Report.FirstDetection.empty());
}

TEST(RecoveryTest, DegradedTranslatorUsesConservativeConfig) {
  AsmProgram Program = randomProgram(3);
  DbtConfig Config;
  Config.Tech = Technique::Rcf;
  Config.Policy = CheckPolicy::End;
  Config.SuperblockLimit = 4;
  Config.FoldSignatureUpdates = true;

  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  Translator.degradeToConservative();
  EXPECT_EQ(Translator.config().Policy, CheckPolicy::AllBB);
  EXPECT_FALSE(Translator.config().ChainDirectExits);
  EXPECT_EQ(Translator.config().SuperblockLimit, 1u);
  EXPECT_FALSE(Translator.config().FoldSignatureUpdates);
  EXPECT_EQ(Translator.degradeCount(), 1u);
  // The flush dropped all safe points; retranslation repopulates them.
  EXPECT_TRUE(Translator.safePoints().empty());
  Interp.state().PC = Translator.resolveGuestTarget(Translator.guestEntry());
  StopInfo Stop = Translator.run(Interp, 10000000);
  EXPECT_EQ(Stop.Kind, StopKind::Halted);
  EXPECT_FALSE(Translator.safePoints().empty());
}

TEST(RecoveryTest, EagerWholeProgramTechniqueRecoversAfterDegrade) {
  // CFCSS requires eager whole-program translation; after a degrade
  // flush the translator must retranslate static leaders on demand (the
  // signature assignment is still valid) instead of running them raw.
  AsmProgram Program = randomProgram(7);
  DbtConfig Config;
  Config.Tech = Technique::Cfcss;
  Config.EagerTranslate = true;
  uint64_t Golden = goldenHashOf(Program, Config);

  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  Translator.degradeToConservative();
  Interp.state().PC = Translator.resolveGuestTarget(Translator.guestEntry());
  StopInfo Stop = Translator.run(Interp, 10000000);
  EXPECT_EQ(Stop.Kind, StopKind::Halted) << getTrapKindName(Stop.Trap);
  EXPECT_EQ(hashOutput(Interp.output()), Golden);
}

TEST(RecoveryTest, TrapDiagnosticFormatsAllFields) {
  StopInfo Stop;
  Stop.Kind = StopKind::Trapped;
  Stop.Trap = TrapKind::BreakTrap;
  Stop.BreakCode = BrkControlFlowError;
  Stop.PC = 0x4000100;
  CpuState State;
  State.Regs[RegPCP] = 0x1234;
  State.Regs[RegRTS] = 0x5678;
  std::string Diag = formatTrapDiagnostic(Stop, State, 0x10020);
  EXPECT_NE(Diag.find("break"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("guest-pc=0x10020"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("break-code=0xcfe"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("pcp=0x1234"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("rts=0x5678"), std::string::npos) << Diag;

  Stop.Trap = TrapKind::ExecViolation;
  Stop.TrapAddr = 0xdead000;
  Diag = formatTrapDiagnostic(Stop, State, 0x10020);
  EXPECT_NE(Diag.find("exec-violation"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("fault-addr=0xdead000"), std::string::npos) << Diag;
}
