//===- MemoryTest.cpp - Unit tests for paged memory and the loader -------------===//

#include "asm/Assembler.h"
#include "vm/Layout.h"
#include "vm/Loader.h"
#include "vm/Memory.h"

#include <gtest/gtest.h>

using namespace cfed;

TEST(MemoryTest, UnmappedAccessFails) {
  Memory Mem;
  uint8_t Byte;
  EXPECT_EQ(Mem.read(0x1000, &Byte, 1), MemResult::Unmapped);
  EXPECT_EQ(Mem.write(0x1000, &Byte, 1), MemResult::Unmapped);
  EXPECT_EQ(Mem.fetch(0x1000, &Byte, 1), MemResult::Unmapped);
  EXPECT_FALSE(Mem.isMapped(0x1000));
  EXPECT_EQ(Mem.getPerms(0x1000), PermNone);
}

TEST(MemoryTest, PermissionEnforcement) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermR);
  uint8_t Byte = 7;
  EXPECT_EQ(Mem.read(0x1000, &Byte, 1), MemResult::Ok);
  EXPECT_EQ(Mem.write(0x1000, &Byte, 1), MemResult::NoWrite);
  EXPECT_EQ(Mem.fetch(0x1000, &Byte, 1), MemResult::NoExec);

  Mem.setPerms(0x1000, PageSize, PermRWX);
  EXPECT_EQ(Mem.write(0x1000, &Byte, 1), MemResult::Ok);
  EXPECT_EQ(Mem.fetch(0x1000, &Byte, 1), MemResult::Ok);
}

TEST(MemoryTest, ReadWriteRoundTrip) {
  Memory Mem;
  Mem.mapRegion(0x2000, PageSize, PermRW);
  EXPECT_EQ(Mem.write64(0x2000, 0x1122334455667788ULL), MemResult::Ok);
  MemResult R = MemResult::Ok;
  EXPECT_EQ(Mem.read64(0x2000, R), 0x1122334455667788ULL);
  EXPECT_EQ(R, MemResult::Ok);
  EXPECT_EQ(Mem.read8(0x2000, R), 0x88); // Little-endian.
}

TEST(MemoryTest, CrossPageAccess) {
  Memory Mem;
  Mem.mapRegion(0x3000, 2 * PageSize, PermRW);
  uint64_t Addr = 0x3000 + PageSize - 4; // Straddles the boundary.
  EXPECT_EQ(Mem.write64(Addr, 0xAABBCCDDEEFF0011ULL), MemResult::Ok);
  MemResult R = MemResult::Ok;
  EXPECT_EQ(Mem.read64(Addr, R), 0xAABBCCDDEEFF0011ULL);
}

TEST(MemoryTest, CrossPagePartialPermissionFails) {
  Memory Mem;
  Mem.mapRegion(0x3000, PageSize, PermRW);
  Mem.mapRegion(0x3000 + PageSize, PageSize, PermR);
  uint64_t Addr = 0x3000 + PageSize - 4;
  EXPECT_EQ(Mem.write64(Addr, 1), MemResult::NoWrite);
}

TEST(MemoryTest, MapRegionRoundsOutward) {
  Memory Mem;
  Mem.mapRegion(0x5100, 100, PermR); // Mid-page, small.
  EXPECT_TRUE(Mem.isMapped(0x5000));
  EXPECT_TRUE(Mem.isMapped(0x5FFF));
  EXPECT_FALSE(Mem.isMapped(0x6000));
}

TEST(MemoryTest, RemapKeepsContents) {
  Memory Mem;
  Mem.mapRegion(0x7000, PageSize, PermRW);
  ASSERT_EQ(Mem.write64(0x7000, 42), MemResult::Ok);
  Mem.mapRegion(0x7000, PageSize, PermR); // Permission change only.
  MemResult R = MemResult::Ok;
  EXPECT_EQ(Mem.read64(0x7000, R), 42u);
}

TEST(MemoryTest, RawBypassesPermissions) {
  Memory Mem;
  Mem.mapRegion(0x8000, PageSize, PermNone);
  uint64_t Value = 0x55;
  Mem.writeRaw(0x8000, &Value, sizeof(Value));
  uint64_t Back = 0;
  Mem.readRaw(0x8000, &Back, sizeof(Back));
  EXPECT_EQ(Back, 0x55u);
}

namespace {

/// Encodes \p I into memory at \p Addr, bypassing permissions.
void pokeInsn(Memory &Mem, uint64_t Addr, const Instruction &I) {
  uint8_t Buffer[InsnSize];
  I.encode(Buffer);
  Mem.writeRaw(Addr, Buffer, InsnSize);
}

} // namespace

TEST(MemoryTest, FetchDecodedReturnsDecodedInstruction) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermRWX);
  pokeInsn(Mem, 0x1000, insn::rri(Opcode::AddI, 3, 4, 77));
  MemResult R = MemResult::Unmapped;
  const Instruction *I = Mem.fetchDecoded(0x1000, R);
  EXPECT_EQ(R, MemResult::Ok);
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->Op, Opcode::AddI);
  EXPECT_EQ(I->A, 3);
  EXPECT_EQ(I->B, 4);
  EXPECT_EQ(I->Imm, 77);
  // The second fetch is a pure side-array hit.
  uint64_t Hits = Mem.predecodeHitCount();
  EXPECT_EQ(Mem.fetchDecoded(0x1000, R), I);
  EXPECT_EQ(Mem.predecodeHitCount(), Hits + 1);
}

TEST(MemoryTest, FetchDecodedHonorsPermissions) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermRW);
  pokeInsn(Mem, 0x1000, insn::rri(Opcode::AddI, 1, 1, 1));
  MemResult R = MemResult::Ok;
  EXPECT_EQ(Mem.fetchDecoded(0x1000, R), nullptr);
  EXPECT_EQ(R, MemResult::NoExec);
  EXPECT_EQ(Mem.fetchDecoded(0x9000, R), nullptr);
  EXPECT_EQ(R, MemResult::Unmapped);
}

TEST(MemoryTest, FetchDecodedMisalignedFallsBack) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermRWX);
  // A misaligned PC is legal input: the caller must take the byte-fetch
  // slow path so trap semantics stay exact.
  MemResult R = MemResult::Unmapped;
  EXPECT_EQ(Mem.fetchDecoded(0x1004, R), nullptr);
  EXPECT_EQ(R, MemResult::Ok);
}

TEST(MemoryTest, FetchDecodedIllegalSlotFallsBack) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermRWX);
  uint8_t Garbage[InsnSize] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  Mem.writeRaw(0x1000, Garbage, InsnSize);
  MemResult R = MemResult::Unmapped;
  EXPECT_EQ(Mem.fetchDecoded(0x1000, R), nullptr);
  EXPECT_EQ(R, MemResult::Ok); // Caller decodes and traps IllegalInsn.
}

TEST(MemoryTest, WriteInvalidatesPredecodedPage) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermRWX);
  pokeInsn(Mem, 0x1000, insn::rri(Opcode::AddI, 1, 1, 10));
  MemResult R = MemResult::Ok;
  const Instruction *I = Mem.fetchDecoded(0x1000, R);
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->Imm, 10);

  // A permission-checked write through the normal path must invalidate
  // the page's side array (self-modifying code coherence).
  uint8_t Buffer[InsnSize];
  insn::rri(Opcode::AddI, 1, 1, 99).encode(Buffer);
  ASSERT_EQ(Mem.write(0x1000, Buffer, InsnSize), MemResult::Ok);
  I = Mem.fetchDecoded(0x1000, R);
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->Imm, 99);
}

TEST(MemoryTest, InvalidatePredecodeDropsSideArrays) {
  Memory Mem;
  Mem.mapRegion(0x1000, 2 * PageSize, PermRWX);
  pokeInsn(Mem, 0x1000, insn::rri(Opcode::AddI, 1, 1, 5));
  MemResult R = MemResult::Ok;
  ASSERT_NE(Mem.fetchDecoded(0x1000, R), nullptr);
  uint64_t DecodesBefore = Mem.predecodeMissCount();
  Mem.invalidatePredecode(0x1000, 2 * PageSize);
  ASSERT_NE(Mem.fetchDecoded(0x1000, R), nullptr);
  // The page had to be re-decoded after the explicit invalidation.
  EXPECT_GT(Mem.predecodeMissCount(), DecodesBefore);
}

TEST(LoaderTest, NativeLayout) {
  AsmResult R = assembleProgram(".data\nv: .word 9\n.code\nmain:\nhalt\n"
                                ".entry main\n");
  ASSERT_TRUE(R.succeeded());
  Memory Mem;
  CpuState State;
  loadProgram(R.Program, LoadMode::Native, Mem, State);
  EXPECT_EQ(State.PC, CodeBase);
  EXPECT_EQ(State.Regs[RegSP], StackTop);
  EXPECT_EQ(Mem.getPerms(CodeBase), PermRX);
  EXPECT_EQ(Mem.getPerms(DataBase), PermRW);
  EXPECT_EQ(Mem.getPerms(StackTop - 8), PermRW);
  MemResult Res = MemResult::Ok;
  EXPECT_EQ(Mem.read64(DataBase, Res), 9u);
}

TEST(LoaderTest, TranslatedLayoutProtectsCode) {
  AsmResult R = assembleProgram("halt\n");
  ASSERT_TRUE(R.succeeded());
  Memory Mem;
  CpuState State;
  loadProgram(R.Program, LoadMode::Translated, Mem, State);
  // Guest code: readable, not executable, not writable — the
  // category-F detector and the self-modification trap.
  EXPECT_EQ(Mem.getPerms(CodeBase), PermR);
}

TEST(LoaderTest, ResetsCpuState) {
  AsmResult R = assembleProgram("halt\n");
  ASSERT_TRUE(R.succeeded());
  Memory Mem;
  CpuState State;
  State.Regs[3] = 999;
  State.F.ZF = true;
  loadProgram(R.Program, LoadMode::Native, Mem, State);
  EXPECT_EQ(State.Regs[3], 0u);
  EXPECT_FALSE(State.F.ZF);
}
