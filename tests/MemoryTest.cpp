//===- MemoryTest.cpp - Unit tests for paged memory and the loader -------------===//

#include "asm/Assembler.h"
#include "vm/Layout.h"
#include "vm/Loader.h"
#include "vm/Memory.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace cfed;

TEST(MemoryTest, UnmappedAccessFails) {
  Memory Mem;
  uint8_t Byte;
  EXPECT_EQ(Mem.read(0x1000, &Byte, 1), MemResult::Unmapped);
  EXPECT_EQ(Mem.write(0x1000, &Byte, 1), MemResult::Unmapped);
  EXPECT_EQ(Mem.fetch(0x1000, &Byte, 1), MemResult::Unmapped);
  EXPECT_FALSE(Mem.isMapped(0x1000));
  EXPECT_EQ(Mem.getPerms(0x1000), PermNone);
}

TEST(MemoryTest, PermissionEnforcement) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermR);
  uint8_t Byte = 7;
  EXPECT_EQ(Mem.read(0x1000, &Byte, 1), MemResult::Ok);
  EXPECT_EQ(Mem.write(0x1000, &Byte, 1), MemResult::NoWrite);
  EXPECT_EQ(Mem.fetch(0x1000, &Byte, 1), MemResult::NoExec);

  Mem.setPerms(0x1000, PageSize, PermRWX);
  EXPECT_EQ(Mem.write(0x1000, &Byte, 1), MemResult::Ok);
  EXPECT_EQ(Mem.fetch(0x1000, &Byte, 1), MemResult::Ok);
}

TEST(MemoryTest, ReadWriteRoundTrip) {
  Memory Mem;
  Mem.mapRegion(0x2000, PageSize, PermRW);
  EXPECT_EQ(Mem.write64(0x2000, 0x1122334455667788ULL), MemResult::Ok);
  MemResult R = MemResult::Ok;
  EXPECT_EQ(Mem.read64(0x2000, R), 0x1122334455667788ULL);
  EXPECT_EQ(R, MemResult::Ok);
  EXPECT_EQ(Mem.read8(0x2000, R), 0x88); // Little-endian.
}

TEST(MemoryTest, CrossPageAccess) {
  Memory Mem;
  Mem.mapRegion(0x3000, 2 * PageSize, PermRW);
  uint64_t Addr = 0x3000 + PageSize - 4; // Straddles the boundary.
  EXPECT_EQ(Mem.write64(Addr, 0xAABBCCDDEEFF0011ULL), MemResult::Ok);
  MemResult R = MemResult::Ok;
  EXPECT_EQ(Mem.read64(Addr, R), 0xAABBCCDDEEFF0011ULL);
}

TEST(MemoryTest, CrossPagePartialPermissionFails) {
  Memory Mem;
  Mem.mapRegion(0x3000, PageSize, PermRW);
  Mem.mapRegion(0x3000 + PageSize, PageSize, PermR);
  uint64_t Addr = 0x3000 + PageSize - 4;
  EXPECT_EQ(Mem.write64(Addr, 1), MemResult::NoWrite);
}

TEST(MemoryTest, MapRegionRoundsOutward) {
  Memory Mem;
  Mem.mapRegion(0x5100, 100, PermR); // Mid-page, small.
  EXPECT_TRUE(Mem.isMapped(0x5000));
  EXPECT_TRUE(Mem.isMapped(0x5FFF));
  EXPECT_FALSE(Mem.isMapped(0x6000));
}

TEST(MemoryTest, RemapKeepsContents) {
  Memory Mem;
  Mem.mapRegion(0x7000, PageSize, PermRW);
  ASSERT_EQ(Mem.write64(0x7000, 42), MemResult::Ok);
  Mem.mapRegion(0x7000, PageSize, PermR); // Permission change only.
  MemResult R = MemResult::Ok;
  EXPECT_EQ(Mem.read64(0x7000, R), 42u);
}

TEST(MemoryTest, RawBypassesPermissions) {
  Memory Mem;
  Mem.mapRegion(0x8000, PageSize, PermNone);
  uint64_t Value = 0x55;
  Mem.writeRaw(0x8000, &Value, sizeof(Value));
  uint64_t Back = 0;
  Mem.readRaw(0x8000, &Back, sizeof(Back));
  EXPECT_EQ(Back, 0x55u);
}

namespace {

/// Encodes \p I into memory at \p Addr, bypassing permissions.
void pokeInsn(Memory &Mem, uint64_t Addr, const Instruction &I) {
  uint8_t Buffer[InsnSize];
  I.encode(Buffer);
  Mem.writeRaw(Addr, Buffer, InsnSize);
}

} // namespace

TEST(MemoryTest, FetchDecodedReturnsDecodedInstruction) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermRWX);
  pokeInsn(Mem, 0x1000, insn::rri(Opcode::AddI, 3, 4, 77));
  MemResult R = MemResult::Unmapped;
  const Instruction *I = Mem.fetchDecoded(0x1000, R);
  EXPECT_EQ(R, MemResult::Ok);
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->Op, Opcode::AddI);
  EXPECT_EQ(I->A, 3);
  EXPECT_EQ(I->B, 4);
  EXPECT_EQ(I->Imm, 77);
  // The second fetch is a pure side-array hit.
  uint64_t Hits = Mem.predecodeHitCount();
  EXPECT_EQ(Mem.fetchDecoded(0x1000, R), I);
  EXPECT_EQ(Mem.predecodeHitCount(), Hits + 1);
}

TEST(MemoryTest, FetchDecodedHonorsPermissions) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermRW);
  pokeInsn(Mem, 0x1000, insn::rri(Opcode::AddI, 1, 1, 1));
  MemResult R = MemResult::Ok;
  EXPECT_EQ(Mem.fetchDecoded(0x1000, R), nullptr);
  EXPECT_EQ(R, MemResult::NoExec);
  EXPECT_EQ(Mem.fetchDecoded(0x9000, R), nullptr);
  EXPECT_EQ(R, MemResult::Unmapped);
}

TEST(MemoryTest, FetchDecodedMisalignedFallsBack) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermRWX);
  // A misaligned PC is legal input: the caller must take the byte-fetch
  // slow path so trap semantics stay exact.
  MemResult R = MemResult::Unmapped;
  EXPECT_EQ(Mem.fetchDecoded(0x1004, R), nullptr);
  EXPECT_EQ(R, MemResult::Ok);
}

TEST(MemoryTest, FetchDecodedIllegalSlotFallsBack) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermRWX);
  uint8_t Garbage[InsnSize] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  Mem.writeRaw(0x1000, Garbage, InsnSize);
  MemResult R = MemResult::Unmapped;
  EXPECT_EQ(Mem.fetchDecoded(0x1000, R), nullptr);
  EXPECT_EQ(R, MemResult::Ok); // Caller decodes and traps IllegalInsn.
}

TEST(MemoryTest, WriteInvalidatesPredecodedPage) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermRWX);
  pokeInsn(Mem, 0x1000, insn::rri(Opcode::AddI, 1, 1, 10));
  MemResult R = MemResult::Ok;
  const Instruction *I = Mem.fetchDecoded(0x1000, R);
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->Imm, 10);

  // A permission-checked write through the normal path must invalidate
  // the page's side array (self-modifying code coherence).
  uint8_t Buffer[InsnSize];
  insn::rri(Opcode::AddI, 1, 1, 99).encode(Buffer);
  ASSERT_EQ(Mem.write(0x1000, Buffer, InsnSize), MemResult::Ok);
  I = Mem.fetchDecoded(0x1000, R);
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(I->Imm, 99);
}

TEST(MemoryTest, InvalidatePredecodeDropsSideArrays) {
  Memory Mem;
  Mem.mapRegion(0x1000, 2 * PageSize, PermRWX);
  pokeInsn(Mem, 0x1000, insn::rri(Opcode::AddI, 1, 1, 5));
  MemResult R = MemResult::Ok;
  ASSERT_NE(Mem.fetchDecoded(0x1000, R), nullptr);
  uint64_t DecodesBefore = Mem.predecodeMissCount();
  Mem.invalidatePredecode(0x1000, 2 * PageSize);
  ASSERT_NE(Mem.fetchDecoded(0x1000, R), nullptr);
  // The page had to be re-decoded after the explicit invalidation.
  EXPECT_GT(Mem.predecodeMissCount(), DecodesBefore);
}

namespace {

/// Records every onPageDirtied callback: page base plus the first
/// pre-image byte (enough to prove the snapshot predates the write).
class RecordingObserver : public PageWriteObserver {
public:
  struct Event {
    uint64_t PageBase;
    uint8_t FirstOldByte;
  };
  std::vector<Event> Events;

  void onPageDirtied(uint64_t PageBase, const uint8_t *OldBytes) override {
    Events.push_back({PageBase, OldBytes[0]});
  }
};

} // namespace

TEST(MemoryTest, WriteObserverFiresOncePerPagePerEpoch) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermRW);
  ASSERT_EQ(Mem.write8(0x1000, 0xAA), MemResult::Ok);

  RecordingObserver Observer;
  Mem.setWriteObserver(&Observer, CacheBase);
  ASSERT_EQ(Mem.write8(0x1001, 0x11), MemResult::Ok);
  ASSERT_EQ(Mem.write8(0x1002, 0x22), MemResult::Ok); // Same page, same epoch.
  ASSERT_EQ(Mem.write8(0x1003, 0x33), MemResult::Ok);
  ASSERT_EQ(Observer.Events.size(), 1u);
  EXPECT_EQ(Observer.Events[0].PageBase, 0x1000u);
  // The pre-image is the page *before* the epoch's first write.
  EXPECT_EQ(Observer.Events[0].FirstOldByte, 0xAA);

  Mem.resetWriteEpoch();
  ASSERT_EQ(Mem.write8(0x1004, 0x44), MemResult::Ok);
  ASSERT_EQ(Observer.Events.size(), 2u);
  EXPECT_EQ(Observer.Events[1].PageBase, 0x1000u);

  Mem.setWriteObserver(nullptr, 0);
  ASSERT_EQ(Mem.write8(0x1005, 0x55), MemResult::Ok);
  EXPECT_EQ(Observer.Events.size(), 2u);
}

TEST(MemoryTest, WriteObserverIgnoresPagesAtOrAboveLimit) {
  Memory Mem;
  Mem.mapRegion(0x1000, PageSize, PermRW);
  Mem.mapRegion(CacheBase, PageSize, PermRW);
  RecordingObserver Observer;
  Mem.setWriteObserver(&Observer, CacheBase);
  // Code-cache churn (installs, chain patching) must not reach the
  // observer — only guest-visible pages below the limit do.
  ASSERT_EQ(Mem.write8(CacheBase, 1), MemResult::Ok);
  EXPECT_TRUE(Observer.Events.empty());
  ASSERT_EQ(Mem.write8(0x1000, 1), MemResult::Ok);
  EXPECT_EQ(Observer.Events.size(), 1u);
}

TEST(MemoryTest, WriteObserverSeesCrossPageWriteOncePerPage) {
  Memory Mem;
  Mem.mapRegion(0x1000, 2 * PageSize, PermRW);
  RecordingObserver Observer;
  Mem.setWriteObserver(&Observer, CacheBase);
  uint64_t Straddle = 0x1000 + PageSize - 4;
  ASSERT_EQ(Mem.write64(Straddle, ~0ull), MemResult::Ok);
  ASSERT_EQ(Observer.Events.size(), 2u);
  EXPECT_EQ(Observer.Events[0].PageBase, 0x1000u);
  EXPECT_EQ(Observer.Events[1].PageBase, 0x1000u + PageSize);
}

TEST(LoaderTest, NativeLayout) {
  AsmResult R = assembleProgram(".data\nv: .word 9\n.code\nmain:\nhalt\n"
                                ".entry main\n");
  ASSERT_TRUE(R.succeeded());
  Memory Mem;
  CpuState State;
  loadProgram(R.Program, LoadMode::Native, Mem, State);
  EXPECT_EQ(State.PC, CodeBase);
  EXPECT_EQ(State.Regs[RegSP], StackTop);
  EXPECT_EQ(Mem.getPerms(CodeBase), PermRX);
  EXPECT_EQ(Mem.getPerms(DataBase), PermRW);
  EXPECT_EQ(Mem.getPerms(StackTop - 8), PermRW);
  MemResult Res = MemResult::Ok;
  EXPECT_EQ(Mem.read64(DataBase, Res), 9u);
}

TEST(LoaderTest, TranslatedLayoutProtectsCode) {
  AsmResult R = assembleProgram("halt\n");
  ASSERT_TRUE(R.succeeded());
  Memory Mem;
  CpuState State;
  loadProgram(R.Program, LoadMode::Translated, Mem, State);
  // Guest code: readable, not executable, not writable — the
  // category-F detector and the self-modification trap.
  EXPECT_EQ(Mem.getPerms(CodeBase), PermR);
}

TEST(LoaderTest, ResetsCpuState) {
  AsmResult R = assembleProgram("halt\n");
  ASSERT_TRUE(R.succeeded());
  Memory Mem;
  CpuState State;
  State.Regs[3] = 999;
  State.F.ZF = true;
  loadProgram(R.Program, LoadMode::Native, Mem, State);
  EXPECT_EQ(State.Regs[3], 0u);
  EXPECT_FALSE(State.F.ZF);
}

namespace {

AsmProgram trivialProgram() {
  AsmResult R = assembleProgram(".data\nv: .word 7\n.code\nmain:\nhalt\n"
                                ".entry main\n");
  EXPECT_TRUE(R.succeeded());
  return R.Program;
}

void patchLE32(std::vector<uint8_t> &Image, size_t Offset, uint32_t Value) {
  ASSERT_LE(Offset + 4, Image.size());
  for (unsigned Byte = 0; Byte < 4; ++Byte)
    Image[Offset + Byte] = static_cast<uint8_t>(Value >> (8 * Byte));
}

void patchLE64(std::vector<uint8_t> &Image, size_t Offset, uint64_t Value) {
  ASSERT_LE(Offset + 8, Image.size());
  for (unsigned Byte = 0; Byte < 8; ++Byte)
    Image[Offset + Byte] = static_cast<uint8_t>(Value >> (8 * Byte));
}

/// Loads \p Image expecting failure; returns the error message and checks
/// that neither memory nor CPU state was touched.
std::string expectImageRejected(const std::vector<uint8_t> &Image) {
  Memory Mem;
  CpuState State;
  std::string Error;
  EXPECT_FALSE(loadProgramImage(Image.data(), Image.size(),
                                LoadMode::Native, Mem, State, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(Mem.isMapped(CodeBase));
  EXPECT_FALSE(Mem.isMapped(DataBase));
  EXPECT_EQ(State.PC, 0u);
  return Error;
}

} // namespace

TEST(LoaderTest, ImageRoundTrip) {
  AsmProgram Program = trivialProgram();
  std::vector<uint8_t> Image = serializeProgram(Program);
  ASSERT_GE(Image.size(),
            ImageHeaderSize + 2 * ImageSectionHeaderSize);

  Memory Mem;
  CpuState State;
  std::string Error;
  ASSERT_TRUE(loadProgramImage(Image.data(), Image.size(), LoadMode::Native,
                               Mem, State, Error))
      << Error;
  EXPECT_EQ(State.PC, Program.Entry);
  EXPECT_EQ(State.Regs[RegSP], StackTop);
  MemResult R = MemResult::Ok;
  EXPECT_EQ(Mem.read64(DataBase, R), 7u);
  uint8_t FirstInsn[InsnSize];
  ASSERT_EQ(Mem.read(CodeBase, FirstInsn, InsnSize), MemResult::Ok);
  EXPECT_EQ(std::memcmp(FirstInsn, Program.Code.data(), InsnSize), 0);
}

TEST(LoaderTest, ImageTruncatedHeaderRejected) {
  std::vector<uint8_t> Image = serializeProgram(trivialProgram());
  Image.resize(ImageHeaderSize - 1);
  std::string Error = expectImageRejected(Image);
  EXPECT_NE(Error.find("truncated"), std::string::npos) << Error;
}

TEST(LoaderTest, ImageBadMagicRejected) {
  std::vector<uint8_t> Image = serializeProgram(trivialProgram());
  patchLE32(Image, 0, 0xDEADBEEF);
  std::string Error = expectImageRejected(Image);
  EXPECT_NE(Error.find("magic"), std::string::npos) << Error;
}

TEST(LoaderTest, ImageBadVersionRejected) {
  std::vector<uint8_t> Image = serializeProgram(trivialProgram());
  patchLE32(Image, 4, ImageVersion + 1);
  std::string Error = expectImageRejected(Image);
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(LoaderTest, ImageTruncatedSectionTableRejected) {
  std::vector<uint8_t> Image = serializeProgram(trivialProgram());
  Image.resize(ImageHeaderSize + ImageSectionHeaderSize / 2);
  std::string Error = expectImageRejected(Image);
  EXPECT_NE(Error.find("section"), std::string::npos) << Error;
}

TEST(LoaderTest, ImagePayloadPastEndRejected) {
  std::vector<uint8_t> Image = serializeProgram(trivialProgram());
  // Point the first section's payload past the end of the file.
  patchLE64(Image, ImageHeaderSize + 16, Image.size());
  std::string Error = expectImageRejected(Image);
  EXPECT_NE(Error.find("past"), std::string::npos) << Error;
}

TEST(LoaderTest, ImageSectionOutsideRegionRejected) {
  std::vector<uint8_t> Image = serializeProgram(trivialProgram());
  // Relocate the code section outside the code region.
  patchLE64(Image, ImageHeaderSize + 8, CodeBase + CodeMaxSize);
  std::string Error = expectImageRejected(Image);
  EXPECT_NE(Error.find("region"), std::string::npos) << Error;
}

TEST(LoaderTest, ImageUnknownSectionKindRejected) {
  std::vector<uint8_t> Image = serializeProgram(trivialProgram());
  patchLE32(Image, ImageHeaderSize, 7);
  std::string Error = expectImageRejected(Image);
  EXPECT_NE(Error.find("kind"), std::string::npos) << Error;
}

TEST(LoaderTest, ImageOverlappingSectionsRejected) {
  // Two data sections landing on the same guest page.
  AsmProgram Program = trivialProgram();
  std::vector<uint8_t> Image = serializeProgram(Program);
  uint32_t NumSections = 0;
  std::memcpy(&NumSections, Image.data() + 16, sizeof(NumSections));
  ASSERT_EQ(NumSections, 2u);
  // Duplicate the data section header (the second one) verbatim: same
  // LoadAddr, same payload — a page-granular overlap.
  std::vector<uint8_t> DataHeader(
      Image.begin() + ImageHeaderSize + ImageSectionHeaderSize,
      Image.begin() + ImageHeaderSize + 2 * ImageSectionHeaderSize);
  std::vector<uint8_t> Rebuilt;
  Rebuilt.insert(Rebuilt.end(), Image.begin(),
                 Image.begin() + ImageHeaderSize +
                     2 * ImageSectionHeaderSize);
  Rebuilt.insert(Rebuilt.end(), DataHeader.begin(), DataHeader.end());
  Rebuilt.insert(Rebuilt.end(),
                 Image.begin() + ImageHeaderSize + 2 * ImageSectionHeaderSize,
                 Image.end());
  patchLE32(Rebuilt, 16, 3);
  // Payload offsets moved by one section header; fix all three.
  for (unsigned Section = 0; Section < 3; ++Section) {
    size_t HeaderOff = ImageHeaderSize + Section * ImageSectionHeaderSize;
    uint64_t FileOffset = 0;
    std::memcpy(&FileOffset, Rebuilt.data() + HeaderOff + 16,
                sizeof(FileOffset));
    patchLE64(Rebuilt, HeaderOff + 16, FileOffset + ImageSectionHeaderSize);
  }
  std::string Error = expectImageRejected(Rebuilt);
  EXPECT_NE(Error.find("overlap"), std::string::npos) << Error;
}

TEST(LoaderTest, ImageEntryOutsideCodeRejected) {
  std::vector<uint8_t> Image = serializeProgram(trivialProgram());
  patchLE64(Image, 8, CodeBase - InsnSize);
  std::string Error = expectImageRejected(Image);
  EXPECT_NE(Error.find("entry"), std::string::npos) << Error;
}

TEST(LoaderTest, CheckedLoadRejectsMisalignedCode) {
  AsmProgram Program = trivialProgram();
  Program.Code.resize(Program.Code.size() + 3); // No longer insn-granular.
  Memory Mem;
  CpuState State;
  std::string Error;
  EXPECT_FALSE(
      loadProgramChecked(Program, LoadMode::Native, Mem, State, Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(Mem.isMapped(CodeBase));
}

TEST(LoaderTest, CheckedLoadRejectsMisalignedEntry) {
  AsmProgram Program = trivialProgram();
  Program.Entry = CodeBase + 3;
  Memory Mem;
  CpuState State;
  std::string Error;
  EXPECT_FALSE(
      loadProgramChecked(Program, LoadMode::Native, Mem, State, Error));
  EXPECT_NE(Error.find("entry"), std::string::npos) << Error;
}

TEST(LoaderTest, CheckedLoadRejectsOversizedCode) {
  AsmProgram Program = trivialProgram();
  Program.Code.resize(CodeMaxSize + InsnSize);
  Memory Mem;
  CpuState State;
  std::string Error;
  EXPECT_FALSE(
      loadProgramChecked(Program, LoadMode::Native, Mem, State, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(LoaderTest, ValidateProgramAcceptsWellFormed) {
  AsmProgram Program = trivialProgram();
  std::string Error;
  EXPECT_TRUE(validateProgram(Program, Error)) << Error;
}
