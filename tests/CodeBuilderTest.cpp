//===- CodeBuilderTest.cpp - Unit tests for the backend buffer -----------------===//

#include "dbt/CodeBuilder.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

Instruction leaPcp(int32_t Imm) {
  return insn::rri(Opcode::Lea, RegPCP, RegPCP, Imm);
}

} // namespace

TEST(CodeBuilderTest, FoldsAdjacentSameRegisterLea) {
  CodeBuilder Builder(/*FoldUpdates=*/true);
  Builder.push(leaPcp(100));
  Builder.push(leaPcp(-30));
  ASSERT_EQ(Builder.size(), 1u);
  EXPECT_EQ(Builder.code()[0].Imm, 70);
  EXPECT_EQ(Builder.foldedCount(), 1u);
}

TEST(CodeBuilderTest, NoFoldingWhenDisabled) {
  CodeBuilder Builder(/*FoldUpdates=*/false);
  Builder.push(leaPcp(100));
  Builder.push(leaPcp(-30));
  EXPECT_EQ(Builder.size(), 2u);
  EXPECT_EQ(Builder.foldedCount(), 0u);
}

TEST(CodeBuilderTest, DoesNotFoldDifferentRegisters) {
  CodeBuilder Builder(true);
  Builder.push(leaPcp(1));
  Builder.push(insn::rri(Opcode::Lea, RegAUX, RegAUX, 2));
  EXPECT_EQ(Builder.size(), 2u);
}

TEST(CodeBuilderTest, DoesNotFoldNonAccumulatingLea) {
  // lea rd, rs, imm with rd != rs is a move-add, not an accumulation.
  CodeBuilder Builder(true);
  Builder.push(insn::rri(Opcode::Lea, RegAUX, RegPCP, 1));
  Builder.push(insn::rri(Opcode::Lea, RegAUX, RegPCP, 2));
  EXPECT_EQ(Builder.size(), 2u);
}

TEST(CodeBuilderTest, BarrierPreventsFolding) {
  CodeBuilder Builder(true);
  Builder.push(leaPcp(5));
  Builder.markBarrier(); // e.g. a chain-target block entry.
  Builder.push(leaPcp(6));
  EXPECT_EQ(Builder.size(), 2u);
  // Folding resumes after the barrier consumed itself.
  Builder.push(leaPcp(7));
  EXPECT_EQ(Builder.size(), 2u);
  EXPECT_EQ(Builder.code()[1].Imm, 13);
}

TEST(CodeBuilderTest, SkipBranchProtectsTheSkippedUpdate) {
  // jcc +8 skips exactly one instruction; the update after the skipped
  // one must not merge into it.
  CodeBuilder Builder(true);
  Builder.push(insn::jcc(CondCode::NE, static_cast<int32_t>(InsnSize)));
  Builder.push(leaPcp(10)); // Conditionally skipped.
  Builder.push(leaPcp(20)); // The skip target: must stay separate.
  ASSERT_EQ(Builder.size(), 3u);
  EXPECT_EQ(Builder.code()[1].Imm, 10);
  EXPECT_EQ(Builder.code()[2].Imm, 20);
}

TEST(CodeBuilderTest, NonSkipBranchesDoNotSuppressLaterFolds) {
  CodeBuilder Builder(true);
  Builder.push(insn::jcc(CondCode::NE, 64)); // Not a one-insn skip.
  Builder.push(leaPcp(10));
  Builder.push(leaPcp(20));
  EXPECT_EQ(Builder.size(), 2u);
  EXPECT_EQ(Builder.code()[1].Imm, 30);
}

TEST(CodeBuilderTest, OverflowPreventsFolding) {
  CodeBuilder Builder(true);
  Builder.push(leaPcp(INT32_MAX));
  Builder.push(leaPcp(1)); // Sum overflows int32: keep separate.
  EXPECT_EQ(Builder.size(), 2u);
  Builder.push(leaPcp(-1)); // Fits: folds into the second.
  EXPECT_EQ(Builder.size(), 2u);
  EXPECT_EQ(Builder.code()[1].Imm, 0);
}

TEST(CodeBuilderTest, ChainFoldsRepeatedly) {
  CodeBuilder Builder(true);
  for (int I = 1; I <= 10; ++I)
    Builder.push(leaPcp(I));
  ASSERT_EQ(Builder.size(), 1u);
  EXPECT_EQ(Builder.code()[0].Imm, 55);
  EXPECT_EQ(Builder.foldedCount(), 9u);
}
