//===- AttackTest.cpp - Adversarial campaign tests ------------------------------===//
//
// The adversarial mode of DESIGN.md §15: gadget-oracle soundness, plan
// determinism, jobs/shard invariance, byte-identical checkpoint resume,
// evasion proof bundles, and the category-registry compatibility the
// appended attack categories must preserve.
//
//===----------------------------------------------------------------------===//

#include "fault/Attack.h"
#include "fault/CampaignEngine.h"
#include "support/Format.h"
#include "telemetry/FlightRecorder.h"
#include "telemetry/Metrics.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unistd.h>

using namespace cfed;

namespace {

AsmProgram assembleOk(const std::string &Source) {
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  return std::move(Result.Program);
}

/// All three event streams in one small program: direct calls with
/// returns, an indirect call through a function-pointer table, and a
/// loop with direct exits for the code-patch family.
AsmProgram allFamiliesProgram() {
  return assembleOk(".entry main\n"
                    ".data\n"
                    "ops: .word op_a, op_b\n"
                    ".code\n"
                    "op_a:\n  add r1, r1, r2\n  ret\n"
                    "op_b:\n  mul r1, r1, r2\n  ret\n"
                    "helper:\n  addi r1, r1, 3\n  ret\n"
                    "main:\n"
                    "  movi r1, 5\n  movi r2, 3\n  movi r5, 0\n"
                    "loop:\n"
                    "  call helper\n"
                    "  andi r6, r5, 1\n"
                    "  movi r4, ops\n"
                    "  shli r6, r6, 3\n"
                    "  add r4, r4, r6\n"
                    "  ld r7, [r4]\n"
                    "  callr r7\n"
                    "  out r1\n"
                    "  addi r5, r5, 1\n"
                    "  cmpi r5, 6\n"
                    "  jcc lt, loop\n"
                    "  halt\n");
}

DbtConfig edgcfConfig(bool ShadowStack = false) {
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  Config.ShadowStack = ShadowStack;
  return Config;
}

std::string tempPath(const std::string &Name) {
  std::string Path = ::testing::TempDir() + "cfed_attack_" +
                     std::to_string(::getpid()) + "_" + Name;
  std::remove(Path.c_str());
  return Path;
}

AttackEngineConfig makeEngine(uint64_t Seed, uint64_t NumAttacks,
                              uint64_t Interval) {
  AttackEngineConfig Engine;
  Engine.NumAttacks = NumAttacks;
  Engine.Seed = Seed;
  Engine.CheckpointInterval = Interval;
  Engine.MaxInsns = 10000000;
  Engine.Jobs = 1;
  return Engine;
}

} // namespace

//===----------------------------------------------------------------------===//
// Categories: appended, never renumbered
//===----------------------------------------------------------------------===//

TEST(AttackTest, AttackCategoriesAppendWithoutRenumbering) {
  // The seven fault-era categories keep their numeric IDs — checkpoint
  // reserve cursors and result files index by them.
  EXPECT_EQ(static_cast<unsigned>(BranchErrorCategory::A), 0u);
  EXPECT_EQ(static_cast<unsigned>(BranchErrorCategory::B), 1u);
  EXPECT_EQ(static_cast<unsigned>(BranchErrorCategory::C), 2u);
  EXPECT_EQ(static_cast<unsigned>(BranchErrorCategory::D), 3u);
  EXPECT_EQ(static_cast<unsigned>(BranchErrorCategory::E), 4u);
  EXPECT_EQ(static_cast<unsigned>(BranchErrorCategory::F), 5u);
  EXPECT_EQ(static_cast<unsigned>(BranchErrorCategory::NoError), 6u);
  EXPECT_EQ(NumBranchErrorCategories, 7u);
  // The attack categories extend the enum past the fault range.
  EXPECT_EQ(static_cast<unsigned>(BranchErrorCategory::AttackReturn), 7u);
  EXPECT_EQ(static_cast<unsigned>(BranchErrorCategory::AttackIndirect), 8u);
  EXPECT_EQ(static_cast<unsigned>(BranchErrorCategory::AttackCodePatch),
            9u);
  EXPECT_EQ(NumTotalErrorCategories, 10u);
  EXPECT_STREQ(getCategoryName(BranchErrorCategory::AttackReturn),
               "AttackReturn");
  EXPECT_EQ(attackCategory(AttackFamily::Return),
            BranchErrorCategory::AttackReturn);
  EXPECT_EQ(attackCategory(AttackFamily::CodePatch),
            BranchErrorCategory::AttackCodePatch);
}

TEST(AttackTest, PreAttackEraCheckpointStillLoads) {
  // A checkpoint written before the attack categories existed carries
  // exactly NumBranchErrorCategories reserve cursors. That shape is
  // frozen: the appended categories must not grow the array, or every
  // old campaign checkpoint would be rejected mid-resume.
  EngineCheckpoint Ckpt;
  EXPECT_EQ(Ckpt.ReserveCursors.size(), 7u);

  Ckpt.Version = EngineCheckpointVersion;
  Ckpt.PlanHash = 0x1234ABCDULL;
  Ckpt.Shard = 0;
  Ckpt.NumShards = 1;
  Ckpt.Cursor = 9;
  Ckpt.Completed = 9;
  Ckpt.ReserveCursors[3] = 2;
  telemetry::MetricsRegistry Registry;
  Registry.counter("fault.injections").inc(9);
  Ckpt.Registry = Registry.snapshot();

  std::string Path = tempPath("preattack.ckpt");
  std::string Error;
  ASSERT_TRUE(CampaignEngine::writeCheckpoint(Path, Ckpt, Error)) << Error;
  EngineCheckpoint Loaded;
  ASSERT_EQ(CampaignEngine::loadCheckpoint(Path, Loaded, Error),
            CampaignEngine::LoadStatus::Ok)
      << Error;
  EXPECT_EQ(Loaded.ReserveCursors, Ckpt.ReserveCursors);
  std::remove(Path.c_str());
}

TEST(AttackTest, FaultAndAttackCheckpointKindsNeverMix) {
  std::string Path = tempPath("kindmix.ckpt");
  EngineCheckpoint Ckpt;
  Ckpt.Version = EngineCheckpointVersion;
  std::string Error;

  ASSERT_TRUE(AttackEngine::writeCheckpoint(Path, Ckpt, Error)) << Error;
  EngineCheckpoint Out;
  EXPECT_EQ(CampaignEngine::loadCheckpoint(Path, Out, Error),
            CampaignEngine::LoadStatus::Corrupt);
  EXPECT_NE(Error.find("not a campaign checkpoint"), std::string::npos)
      << Error;

  ASSERT_TRUE(CampaignEngine::writeCheckpoint(Path, Ckpt, Error)) << Error;
  EXPECT_EQ(AttackEngine::loadCheckpoint(Path, Out, Error),
            CampaignEngine::LoadStatus::Corrupt);
  EXPECT_NE(Error.find("not an attack campaign checkpoint"),
            std::string::npos)
      << Error;
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Planning: determinism and oracle soundness
//===----------------------------------------------------------------------===//

TEST(AttackTest, PlanIsDeterministic) {
  AsmProgram Program = allFamiliesProgram();
  AttackCampaign Campaign(Program, edgcfConfig());
  ASSERT_TRUE(Campaign.prepare(10000000));
  EXPECT_GT(Campaign.eventExecutions(AttackFamily::Return), 0u);
  EXPECT_GT(Campaign.eventExecutions(AttackFamily::Indirect), 0u);
  EXPECT_GT(Campaign.eventExecutions(AttackFamily::CodePatch), 0u);

  std::vector<PlannedAttack> A = Campaign.plan(24, 42);
  std::vector<PlannedAttack> B = Campaign.plan(24, 42);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Instance, B[I].Instance);
    EXPECT_EQ(A[I].Family, B[I].Family);
    EXPECT_EQ(A[I].SiteAddr, B[I].SiteAddr);
    EXPECT_EQ(A[I].RealTarget, B[I].RealTarget);
    EXPECT_EQ(A[I].ForgedTarget, B[I].ForgedTarget);
    EXPECT_EQ(A[I].GadgetValid, B[I].GadgetValid);
  }
  // A different seed reshuffles at least something.
  std::vector<PlannedAttack> C = Campaign.plan(24, 43);
  bool Different = C.size() != A.size();
  for (size_t I = 0; !Different && I < A.size(); ++I)
    Different = A[I].Instance != C[I].Instance ||
                A[I].ForgedTarget != C[I].ForgedTarget;
  EXPECT_TRUE(Different);
}

TEST(AttackTest, ForgedReturnsNeverTargetTheRealAddress) {
  AsmProgram Program = assembleWorkload("186.crafty");
  AttackCampaign Campaign(Program, edgcfConfig());
  ASSERT_TRUE(Campaign.prepare(10000000));
  for (const PlannedAttack &Attack : Campaign.plan(30, 7)) {
    if (Attack.ForgedTarget == 0)
      continue;
    EXPECT_NE(Attack.ForgedTarget, Attack.RealTarget)
        << "an attack that redirects to the genuine target is a no-op";
  }
}

TEST(AttackTest, OracleAcceptedReturnGadgetsEvadeTheSignatureCheck) {
  // The whole point of GadgetValid: when the checker's algebra accepts
  // the forged edge, the signature detector must never fire on it. The
  // run may still end in det-hw (the gadget executes garbage) or masked
  // — but 0xCFE would mean the oracle lied.
  AsmProgram Program = assembleWorkload("186.crafty");
  for (bool Eager : {false, true}) {
    DbtConfig Config;
    Config.Tech = Eager ? Technique::Cfcss : Technique::EdgCf;
    Config.EagerTranslate = Eager;
    AttackCampaign Campaign(Program, Config);
    ASSERT_TRUE(Campaign.prepare(10000000));
    unsigned Checked = 0;
    for (const PlannedAttack &Attack : Campaign.plan(24, 11)) {
      if (Attack.Family != AttackFamily::Return || !Attack.GadgetValid)
        continue;
      AttackCampaign::AttackReport Report = Campaign.injectAttack(Attack);
      if (!Report.Fired)
        continue;
      ++Checked;
      EXPECT_NE(Report.Result, AttackOutcome::DetectedSignature)
          << (Eager ? "cfcss" : "edgcf")
          << " signature fired on an oracle-accepted gadget (instance "
          << Attack.Instance << ")";
    }
    EXPECT_GT(Checked, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Campaign invariances
//===----------------------------------------------------------------------===//

TEST(AttackTest, JobCountDoesNotChangeResults) {
  AsmProgram Program = allFamiliesProgram();
  AttackCampaign Serial(Program, edgcfConfig());
  ASSERT_TRUE(Serial.prepare(10000000));
  AttackResult Ref = Serial.run(20, 9, 1);

  AttackCampaign Parallel(Program, edgcfConfig());
  ASSERT_TRUE(Parallel.prepare(10000000));
  EXPECT_TRUE(Ref == Parallel.run(20, 9, 4));
}

TEST(AttackTest, ResultsRebuildExactlyFromTheRegistry) {
  AsmProgram Program = allFamiliesProgram();
  AttackCampaign Campaign(Program, edgcfConfig());
  ASSERT_TRUE(Campaign.prepare(10000000));
  AttackResult Result = Campaign.run(20, 9, 2);
  telemetry::RegistrySnapshot Snap = Campaign.metrics().snapshot();
  EXPECT_TRUE(hasAttackTallies(Snap));
  EXPECT_TRUE(attackResultFromSnapshot(Snap) == Result);
  EXPECT_EQ(Snap.counterOr("attack.attacks"), Result.Attacks);
}

//===----------------------------------------------------------------------===//
// The precision-matrix claims
//===----------------------------------------------------------------------===//

TEST(AttackTest, SignatureOnlySchemeMissesSomeReturnAttack) {
  // Acceptance gate: under a signature-only scheme at least one forged
  // return goes completely undetected — the matrix row the shadow stack
  // exists to zero out.
  AsmProgram Program = assembleWorkload("186.crafty");
  AttackCampaign Campaign(Program, edgcfConfig(false));
  ASSERT_TRUE(Campaign.prepare(10000000));
  AttackResult Result = Campaign.run(30, 7, 2);
  const AttackOutcomeCounts &Returns = Result.of(AttackFamily::Return);
  ASSERT_GT(Returns.total(), 0u);
  EXPECT_GT(Returns.undetected(), 0u);
  EXPECT_EQ(Returns.DetectedSig, 0u)
      << "EdgCF derives the signature from the popped value; it can "
         "never catch a forged return";
}

TEST(AttackTest, ShadowStackZeroesUndetectedReturnAttacks) {
  AsmProgram Program = assembleWorkload("186.crafty");
  AttackCampaign Campaign(Program, edgcfConfig(true));
  ASSERT_TRUE(Campaign.prepare(10000000));
  AttackResult Result = Campaign.run(30, 7, 2);
  const AttackOutcomeCounts &Returns = Result.of(AttackFamily::Return);
  ASSERT_GT(Returns.total(), 0u);
  EXPECT_EQ(Returns.undetected(), 0u);
  EXPECT_EQ(Returns.DetectedShadow, Returns.total())
      << "every forged return must be caught by the shadow stack alone";
}

TEST(AttackTest, EvasionsLeaveFlightRecorderBundles) {
  AsmProgram Program = assembleWorkload("186.crafty");
  AttackCampaign Campaign(Program, edgcfConfig(false));
  ASSERT_TRUE(Campaign.prepare(10000000));
  std::string Dir = tempPath("evasion_bundles");
  telemetry::FlightRecorder Recorder(Dir, 128);
  AttackResult Result = Campaign.run(30, 7, 1, &Recorder);
  uint64_t Undetected = Result.totals().undetected();
  ASSERT_GT(Undetected, 0u);
  EXPECT_GE(Recorder.bundleCount(), Undetected)
      << "every undetected attack must leave a proof bundle";
  std::ifstream In(Recorder.lastPath());
  ASSERT_TRUE(In.is_open()) << Recorder.lastPath();
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Text.find("attack-evasion"), std::string::npos);
  EXPECT_NE(Text.find("forged_target"), std::string::npos);
}

TEST(AttackTest, RecoveryVariantRollsAttacksBack) {
  AsmProgram Program = assembleWorkload("186.crafty");
  AttackCampaign Campaign(Program, edgcfConfig(true));
  ASSERT_TRUE(Campaign.prepare(10000000));
  RecoveryConfig Recovery;
  Recovery.CheckpointInterval = 500;
  AttackResult Result = Campaign.runWithRecovery(16, 7, Recovery, 2);
  EXPECT_EQ(Result.totals().total(), Result.Attacks);
  EXPECT_GT(Result.totals().Recovered, 0u)
      << "shadow-stack detections feed the rollback path like any trap";
}

//===----------------------------------------------------------------------===//
// The attack engine: checkpoints, shards, rendering
//===----------------------------------------------------------------------===//

TEST(AttackTest, EngineResumeIsByteIdentical) {
  AsmProgram Program = allFamiliesProgram();
  AttackEngineConfig Base = makeEngine(17, 18, 6);
  AttackEngineReport Reference =
      AttackEngine(Program, edgcfConfig(), Base).run();
  ASSERT_TRUE(Reference.Finished);
  EXPECT_EQ(Reference.Completed, 18u);

  std::string Path = tempPath("attack_resume.ckpt");
  AttackEngineConfig Interrupted = Base;
  Interrupted.CheckpointFile = Path;
  Interrupted.MaxBatches = 1;
  AttackEngineReport Partial =
      AttackEngine(Program, edgcfConfig(), Interrupted).run();
  EXPECT_FALSE(Partial.Finished);
  EXPECT_EQ(Partial.Completed, 6u);

  AttackEngineConfig Resume = Base;
  Resume.CheckpointFile = Path;
  AttackEngineReport Resumed =
      AttackEngine(Program, edgcfConfig(), Resume).run();
  EXPECT_TRUE(Resumed.Resumed);
  EXPECT_TRUE(Resumed.Finished);
  EXPECT_EQ(Resumed.Completed, Reference.Completed);
  EXPECT_TRUE(Resumed.Result == Reference.Result);
  EXPECT_EQ(Resumed.Registry.toJson(), Reference.Registry.toJson());
  EXPECT_EQ(AttackEngine::resultToJson(Resumed, Base),
            AttackEngine::resultToJson(Reference, Base));
  std::remove(Path.c_str());
}

TEST(AttackTest, ShardMergeReproducesUnshardedRun) {
  AsmProgram Program = allFamiliesProgram();
  AttackEngineConfig Base = makeEngine(23, 16, 8);
  AttackEngineReport Reference =
      AttackEngine(Program, edgcfConfig(), Base).run();

  std::vector<ShardResult> Shards;
  for (unsigned Shard = 0; Shard < 2; ++Shard) {
    AttackEngineConfig Sharded = Base;
    Sharded.ShardIndex = Shard;
    Sharded.NumShards = 2;
    Sharded.Jobs = Shard ? 3 : 1;
    AttackEngineReport Part =
        AttackEngine(Program, edgcfConfig(), Sharded).run();
    std::string Json = AttackEngine::resultToJson(Part, Sharded);
    ShardResult Parsed;
    std::string Error;
    ASSERT_TRUE(CampaignEngine::parseShardResult(Json, Parsed, Error))
        << Error;
    Shards.push_back(std::move(Parsed));
  }

  ShardResult Merged;
  std::string Error;
  ASSERT_TRUE(CampaignEngine::mergeShards(Shards, Merged, Error)) << Error;
  EXPECT_EQ(Merged.Completed, Reference.Completed);
  EXPECT_EQ(Merged.Registry.toJson(), Reference.Registry.toJson());
  EXPECT_TRUE(attackResultFromSnapshot(Merged.Registry) ==
              Reference.Result);
  EXPECT_EQ(renderPrecisionSummaryLine(Merged.Registry),
            renderPrecisionSummaryLine(Reference.Registry));
}

TEST(AttackTest, PrecisionRenderingIsExact) {
  telemetry::MetricsRegistry Registry;
  Registry.counter("attack.return.det-shadow").inc(4);
  Registry.counter("attack.return.evaded").inc(2);
  Registry.counter("attack.code-patch.det-sig").inc(3);
  Registry.counter("attack.code-patch.masked").inc(1);
  Registry.counter("attack.attacks").inc(10);
  telemetry::RegistrySnapshot Snap = Registry.snapshot();

  EXPECT_EQ(renderPrecisionSummaryLine(Snap),
            "precision-summary: attacks=10 detected=3 shadow_only=4 "
            "undetected=2 recovered=0 benign=1");
  std::string Matrix = renderPrecisionMatrix(Snap);
  EXPECT_NE(Matrix.find("return"), std::string::npos);
  EXPECT_NE(Matrix.find("code-patch"), std::string::npos);
  // The indirect family saw no attacks: its row is omitted.
  EXPECT_EQ(Matrix.find("indirect"), std::string::npos);

  telemetry::MetricsRegistry Empty;
  EXPECT_FALSE(hasAttackTallies(Empty.snapshot()));
  EXPECT_EQ(renderPrecisionMatrix(Empty.snapshot()), "");
}
