//===- FaultTest.cpp - Unit tests for the error model and campaigns ------------===//

#include "fault/Campaign.h"
#include "fault/ErrorModel.h"
#include "vm/Layout.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

Cfg buildCfgFrom(const std::string &Source, AsmProgram &ProgramOut) {
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  ProgramOut = std::move(Result.Program);
  return Cfg::build(ProgramOut.Code.data(), ProgramOut.Code.size(),
                    CodeBase, ProgramOut.Entry, ProgramOut.CodeLabels);
}

} // namespace

TEST(ClassifyTest, TargetCategories) {
  AsmProgram Program;
  Cfg G = buildCfgFrom("a:\nmovi r1, 1\nmovi r2, 2\ncmpi r1, 0\n"
                       "jcc eq, c\n"
                       "b:\nmovi r3, 3\njmp c\n"
                       "c:\nmovi r4, 4\nhalt\n",
                       Program);
  // Block a: [CodeBase, +4 insns). Branch at +3 insns.
  uint64_t BranchAddr = CodeBase + 3 * InsnSize;
  uint64_t BlockB = CodeBase + 4 * InsnSize;
  uint64_t BlockC = CodeBase + 6 * InsnSize;

  // Beginning of own block: B.
  EXPECT_EQ(classifyBranchTarget(G, BranchAddr, CodeBase),
            BranchErrorCategory::B);
  // Middle of own block (including the branch itself): C.
  EXPECT_EQ(classifyBranchTarget(G, BranchAddr, CodeBase + InsnSize),
            BranchErrorCategory::C);
  EXPECT_EQ(classifyBranchTarget(G, BranchAddr, BranchAddr),
            BranchErrorCategory::C);
  // Misaligned middle of own block is still C.
  EXPECT_EQ(classifyBranchTarget(G, BranchAddr, CodeBase + 9),
            BranchErrorCategory::C);
  // Beginning of another block: D.
  EXPECT_EQ(classifyBranchTarget(G, BranchAddr, BlockB),
            BranchErrorCategory::D);
  EXPECT_EQ(classifyBranchTarget(G, BranchAddr, BlockC),
            BranchErrorCategory::D);
  // Middle of another block: E.
  EXPECT_EQ(classifyBranchTarget(G, BranchAddr, BlockB + InsnSize),
            BranchErrorCategory::E);
  // Outside the code region: F.
  EXPECT_EQ(classifyBranchTarget(G, BranchAddr, DataBase),
            BranchErrorCategory::F);
  EXPECT_EQ(classifyBranchTarget(G, BranchAddr, CodeBase - 8),
            BranchErrorCategory::F);
  EXPECT_EQ(classifyBranchTarget(G, BranchAddr, G.codeEnd()),
            BranchErrorCategory::F);
}

TEST(ErrorModelTest, SiteAccounting) {
  // Each executed offset branch contributes exactly 36 fault sites.
  AsmResult R = assembleProgram(
      "movi r1, 3\nloop:\naddi r1, r1, -1\njcc ne, loop\nhalt\n");
  ASSERT_TRUE(R.succeeded());
  ErrorModelResult Model = runErrorModel(R.Program, 1000);
  EXPECT_EQ(Model.BranchExecutions, 3u); // Taken, taken, not-taken.
  EXPECT_EQ(Model.totalSites(), 3u * 36u);
}

TEST(ErrorModelTest, NotTakenAddressFaultsAreNoError) {
  AsmResult R = assembleProgram(
      "movi r1, 1\ncmpi r1, 2\njcc eq, skip\nskip:\nhalt\n");
  ASSERT_TRUE(R.succeeded());
  ErrorModelResult Model = runErrorModel(R.Program, 1000);
  // The branch is never taken: all 32 address sites are No Error, and
  // its 4 flag sites split between A (direction flips) and No Error.
  const CategoryCounts &NoError = Model.of(BranchErrorCategory::NoError);
  EXPECT_EQ(NoError.NotTakenAddr, 32u);
  const CategoryCounts &A = Model.of(BranchErrorCategory::A);
  EXPECT_EQ(A.TakenAddr, 0u);
  EXPECT_GT(A.NotTakenFlags, 0u); // Flipping ZF flips an eq branch.
}

TEST(ErrorModelTest, TakenFallthroughFaultIsCategoryA) {
  // jmp +8 over one insn: flipping the offset to land on the
  // fall-through behaves like a mistaken branch (category A).
  AsmResult R = assembleProgram("jmp skip\nnop\nskip:\nhalt\n");
  ASSERT_TRUE(R.succeeded());
  ErrorModelResult Model = runErrorModel(R.Program, 1000);
  const CategoryCounts &A = Model.of(BranchErrorCategory::A);
  // Offset 8 -> flipping bit 3 gives offset 0 = fall-through.
  EXPECT_EQ(A.TakenAddr, 1u);
}

TEST(ErrorModelTest, MergeAccumulates) {
  AsmResult R = assembleProgram("jmp skip\nnop\nskip:\nhalt\n");
  ASSERT_TRUE(R.succeeded());
  ErrorModelResult A = runErrorModel(R.Program, 1000);
  ErrorModelResult B = runErrorModel(R.Program, 1000);
  uint64_t Single = A.totalSites();
  A.merge(B);
  EXPECT_EQ(A.totalSites(), 2 * Single);
  EXPECT_EQ(A.BranchExecutions, 2u);
}

TEST(ErrorModelTest, ProbabilitiesSumToOne) {
  RandomProgramOptions Options;
  Options.Seed = 3;
  AsmResult R = assembleProgram(generateRandomProgram(Options));
  ASSERT_TRUE(R.succeeded());
  ErrorModelResult Model = runErrorModel(R.Program, 10000000);
  double Sum = 0;
  for (unsigned I = 0; I < NumBranchErrorCategories; ++I)
    Sum += Model.probability(static_cast<BranchErrorCategory>(I));
  EXPECT_NEAR(Sum, 1.0, 1e-12);
  double SumAtoE = 0;
  for (BranchErrorCategory Cat :
       {BranchErrorCategory::A, BranchErrorCategory::B,
        BranchErrorCategory::C, BranchErrorCategory::D,
        BranchErrorCategory::E})
    SumAtoE += Model.probabilityAmongAtoE(Cat);
  EXPECT_NEAR(SumAtoE, 1.0, 1e-12);
}

TEST(CampaignTest, InjectDetailedReportsLatency) {
  RandomProgramOptions Options;
  Options.Seed = 4;
  AsmResult R = assembleProgram(generateRandomProgram(Options));
  ASSERT_TRUE(R.succeeded());
  DbtConfig Config;
  Config.Tech = Technique::Rcf;
  FaultCampaign Campaign(R.Program, Config);
  ASSERT_TRUE(Campaign.prepare(10000000));
  auto Faults = Campaign.plan(60, 11, SiteClass::OriginalOnly);
  unsigned Checked = 0;
  for (const PlannedFault &Fault : Faults) {
    if (Fault.Category == BranchErrorCategory::NoError)
      continue;
    InjectionReport Report = Campaign.injectDetailed(Fault);
    EXPECT_TRUE(Report.Fired);
    if (Report.Result == Outcome::DetectedSignature) {
      // Detection strictly after the fault, within the run budget.
      EXPECT_GT(Report.LatencyInsns, 0u);
      EXPECT_LT(Report.LatencyInsns, Campaign.goldenInsns() * 4 + 100000);
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 0u);
}

TEST(CampaignTest, LatencyGrowsWithRelaxedPolicies) {
  // Average signature-detection latency under ALLBB must be below the
  // latency under END (Section 6's delay trade-off).
  RandomProgramOptions Options;
  Options.Seed = 8;
  Options.LoopTrip = 20;
  AsmResult R = assembleProgram(generateRandomProgram(Options));
  ASSERT_TRUE(R.succeeded());
  auto AvgLatency = [&](CheckPolicy Policy) {
    DbtConfig Config;
    Config.Tech = Technique::Rcf;
    Config.Policy = Policy;
    FaultCampaign Campaign(R.Program, Config);
    EXPECT_TRUE(Campaign.prepare(10000000));
    auto Faults = Campaign.plan(120, 21, SiteClass::OriginalOnly);
    uint64_t Sum = 0, Count = 0;
    for (const PlannedFault &Fault : Faults) {
      if (Fault.Category == BranchErrorCategory::NoError)
        continue;
      InjectionReport Report = Campaign.injectDetailed(Fault);
      if (Report.Result == Outcome::DetectedSignature) {
        Sum += Report.LatencyInsns;
        ++Count;
      }
    }
    EXPECT_GT(Count, 0u);
    return double(Sum) / double(Count ? Count : 1);
  };
  EXPECT_LT(AvgLatency(CheckPolicy::AllBB), AvgLatency(CheckPolicy::End));
}

TEST(CampaignTest, OutcomeCountsArithmetic) {
  OutcomeCounts Counts;
  Counts.add(Outcome::DetectedSignature);
  Counts.add(Outcome::DetectedSignature);
  Counts.add(Outcome::Sdc);
  Counts.add(Outcome::Timeout);
  Counts.add(Outcome::Masked);
  Counts.add(Outcome::DetectedHardware);
  EXPECT_EQ(Counts.total(), 6u);
  EXPECT_EQ(Counts.DetectedSig, 2u);
  OutcomeCounts Other;
  Other.add(Outcome::Sdc);
  Counts.merge(Other);
  EXPECT_EQ(Counts.Sdc, 2u);
  EXPECT_EQ(Counts.total(), 7u);
}

TEST(CampaignTest, SiteClassPartition) {
  // Planning per class picks only matching sites.
  RandomProgramOptions Options;
  Options.Seed = 12;
  AsmResult R = assembleProgram(generateRandomProgram(Options));
  ASSERT_TRUE(R.succeeded());
  DbtConfig Config;
  Config.Tech = Technique::Rcf; // Plenty of instrumentation branches.
  FaultCampaign Campaign(R.Program, Config);
  ASSERT_TRUE(Campaign.prepare(10000000));
  for (const PlannedFault &Fault :
       Campaign.plan(40, 3, SiteClass::InstrumentationOnly))
    EXPECT_TRUE(Fault.InstrSite) << std::hex << Fault.SiteAddr;
  for (const PlannedFault &Fault :
       Campaign.plan(40, 3, SiteClass::OriginalOnly))
    EXPECT_FALSE(Fault.InstrSite) << std::hex << Fault.SiteAddr;
}

TEST(CampaignTest, PrepareFailsOnNonHaltingProgram) {
  AsmResult R = assembleProgram("spin:\njmp spin\n");
  ASSERT_TRUE(R.succeeded());
  FaultCampaign Campaign(R.Program, DbtConfig{});
  EXPECT_FALSE(Campaign.prepare(100000));
}

TEST(CampaignTest, ParallelRunMatchesSerial) {
  // The thread-pool campaign must produce tallies identical to the
  // serial one: selection and merge are serial and position-indexed, so
  // the job count can only change scheduling, never results.
  RandomProgramOptions Options;
  Options.Seed = 19;
  AsmResult R = assembleProgram(generateRandomProgram(Options));
  ASSERT_TRUE(R.succeeded());
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  FaultCampaign Campaign(R.Program, Config);
  ASSERT_TRUE(Campaign.prepare(10000000));

  CampaignResult Serial = Campaign.run(30, 77, SiteClass::Any, 1);
  CampaignResult Parallel = Campaign.run(30, 77, SiteClass::Any, 4);
  EXPECT_GT(Serial.Injections, 0u);
  EXPECT_TRUE(Serial == Parallel);
  EXPECT_TRUE(Serial.totals() == Parallel.totals());

  // Rerunning with the same seed and yet another job count stays stable.
  CampaignResult Again = Campaign.run(30, 77, SiteClass::Any, 3);
  EXPECT_TRUE(Serial == Again);

  // Tallies flow through the campaign's metrics registry; the three
  // identical runs merged to exactly three times one run's counts, and
  // the result round-trips from the cumulative snapshot.
  telemetry::RegistrySnapshot Snap = Campaign.metrics().snapshot();
  EXPECT_EQ(Snap.counterOr("fault.injections"), 3 * Serial.Injections);
  CampaignResult Cumulative = campaignResultFromSnapshot(Snap);
  EXPECT_EQ(Cumulative.Injections, 3 * Serial.Injections);
  EXPECT_EQ(Cumulative.totals().total(), 3 * Serial.totals().total());
}

TEST(CampaignTest, MetricsRegistryIsJobsInvariant) {
  // Two fresh campaigns over the same program and seed, differing only
  // in job count, must leave byte-identical registry snapshots: the
  // parallel path tallies through the same serial merge.
  RandomProgramOptions Options;
  Options.Seed = 19;
  AsmResult R = assembleProgram(generateRandomProgram(Options));
  ASSERT_TRUE(R.succeeded());
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;

  FaultCampaign SerialCampaign(R.Program, Config);
  ASSERT_TRUE(SerialCampaign.prepare(10000000));
  CampaignResult Serial = SerialCampaign.run(30, 77, SiteClass::Any, 1);

  FaultCampaign ParallelCampaign(R.Program, Config);
  ASSERT_TRUE(ParallelCampaign.prepare(10000000));
  CampaignResult Parallel = ParallelCampaign.run(30, 77, SiteClass::Any, 4);

  EXPECT_GT(Serial.Injections, 0u);
  EXPECT_TRUE(Serial == Parallel);
  EXPECT_TRUE(SerialCampaign.metrics().snapshot() ==
              ParallelCampaign.metrics().snapshot());
}
