//===- TraceTierTest.cpp - Tests for the optimizing trace tier -----------------===//
//
// End-to-end properties of the second translation tier: hot-trace
// promotion must coexist with self-modifying code, quarantine and the
// watchdog, and the adaptive check placement must lose no coverage
// against per-block checking (proved over the Section 4 formal model).
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "recovery/Recovery.h"
#include "sig/FormalModel.h"
#include "vm/Loader.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

AsmProgram assembleOk(const std::string &Source) {
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  return Result.Program;
}

AsmProgram assembleRandom(uint64_t Seed, unsigned Segments = 6) {
  RandomProgramOptions Options;
  Options.Seed = Seed;
  Options.NumSegments = Segments;
  Options.LoopTrip = 12;
  AsmResult Result = assembleProgram(generateRandomProgram(Options));
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  return Result.Program;
}

struct DbtRun {
  Memory Mem;
  Interpreter Interp{Mem};
  Dbt Translator;
  StopInfo Stop;
  bool Loaded = false;

  DbtRun(const AsmProgram &Program, DbtConfig Config,
         uint64_t MaxInsns = 10000000)
      : Translator(Mem, Config) {
    Loaded = Translator.load(Program, Interp.state());
    if (Loaded)
      Stop = Translator.run(Interp, MaxInsns);
  }
};

DbtConfig optConfig(Technique Tech = Technique::EdgCf) {
  DbtConfig Config;
  Config.Tech = Tech;
  Config.Tier = DbtTier::Opt;
  Config.PromoteThreshold = 4; // Promote early so small tests form traces.
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Trace formation
//===----------------------------------------------------------------------===//

TEST(TraceTierTest, HotLoopPromotesToTraceWithSameOutput) {
  AsmProgram Program = assembleRandom(21);
  DbtConfig Base;
  Base.Tech = Technique::EdgCf;
  DbtRun BaseRun(Program, Base);
  ASSERT_TRUE(BaseRun.Loaded);
  ASSERT_EQ(BaseRun.Stop.Kind, StopKind::Halted);

  DbtRun OptRun(Program, optConfig());
  ASSERT_TRUE(OptRun.Loaded);
  ASSERT_EQ(OptRun.Stop.Kind, StopKind::Halted)
      << getTrapKindName(OptRun.Stop.Trap);
  EXPECT_EQ(OptRun.Interp.output(), BaseRun.Interp.output());
  EXPECT_GT(OptRun.Translator.tracePromotionCount(), 0u);

  bool SawPromoted = false;
  for (const TranslatedBlock &TB : OptRun.Translator.blocks())
    SawPromoted |= TB.Promoted;
  EXPECT_TRUE(SawPromoted);
}

TEST(TraceTierTest, PromotedTraceBranchSitesClassifyAsInstrumentation) {
  // Regression test: a promoted trace registers only its head block, so
  // the head's entry must carry every inner sub-block's instrumentation
  // ranges — otherwise check branches deep in the trace enumerate as
  // original-program sites and fault campaigns misclassify them. Every
  // branch reading the signature register is checker-emitted by
  // construction, whether in a live block or a retired (pre-promotion)
  // translation.
  DbtRun Run(assembleRandom(22), optConfig());
  ASSERT_TRUE(Run.Loaded);
  ASSERT_EQ(Run.Stop.Kind, StopKind::Halted);
  ASSERT_GT(Run.Translator.tracePromotionCount(), 0u);

  unsigned SignatureBranches = 0;
  for (const BranchSiteInfo &Site : Run.Translator.enumerateBranchSites()) {
    uint8_t Raw[InsnSize];
    Run.Mem.readRaw(Site.CacheAddr, Raw, InsnSize);
    auto I = Instruction::decode(Raw);
    ASSERT_TRUE(I.has_value());
    if (getOpcodeKind(I->Op) == OpKind::RegZeroJump && I->A == RegPCP) {
      ++SignatureBranches;
      EXPECT_TRUE(Site.IsInstrumentation)
          << "check branch at 0x" << std::hex << Site.CacheAddr
          << " classified as an original-program site";
    }
  }
  EXPECT_GT(SignatureBranches, 0u);
}

TEST(TraceTierTest, ChecksElidedUnderAdaptivePlacement) {
  // Under ALLBB with a laxer hot policy, hot regions must actually
  // drop checks (counted per elision) while cold regions keep them.
  DbtConfig Config = optConfig();
  Config.Policy = CheckPolicy::AllBB;
  Config.HotPolicy = CheckPolicy::RetBE;
  DbtRun Run(assembleRandom(23), Config);
  ASSERT_TRUE(Run.Loaded);
  ASSERT_EQ(Run.Stop.Kind, StopKind::Halted);
  EXPECT_GT(Run.Translator.checksElidedCount(), 0u);
}

//===----------------------------------------------------------------------===//
// SMC, quarantine and the watchdog against promoted traces
//===----------------------------------------------------------------------===//

TEST(TraceTierTest, SelfModifyingCodeInvalidatesPromotedTrace) {
  // The first pass runs the loop hot enough to promote it into a trace;
  // the program then rewrites an immediate *inside* the promoted loop
  // body and re-enters it. The write-protection fault must flush the
  // trace along with everything else, and the retranslated loop must
  // see the patched code.
  AsmProgram Program = assembleOk(R"(
.entry main
main:
  movi r10, 24          ; first-pass trip: far above PromoteThreshold
  movi r9, 0
  movi r8, 0            ; 0 = patch still pending
loop:
patch:
  movi r3, 7            ; becomes movi r3, 99 after the patch
  add r9, r9, r3
  addi r10, r10, -1
  jnzr r10, loop
  jnzr r8, done
  movi r8, 1
  movi r1, patch
  movi r2, 99
  stb [r1+4], r2        ; rewrite the low immediate byte
  movi r10, 2
  jmp loop
done:
  out r9
  halt
)");
  DbtRun Run(Program, optConfig());
  ASSERT_TRUE(Run.Loaded);
  ASSERT_EQ(Run.Stop.Kind, StopKind::Halted)
      << getTrapKindName(Run.Stop.Trap);
  // 24 iterations of +7, then 2 iterations of +99.
  EXPECT_EQ(Run.Interp.output(), "366\n");
  EXPECT_GT(Run.Translator.tracePromotionCount(), 0u);
  EXPECT_GE(Run.Translator.flushCount(), 1u);
}

TEST(TraceTierTest, CorruptedTraceQuarantinesWholeUnitAndSelfHeals) {
  // Scrub-driven quarantine of a block *inside* a promoted trace: the
  // whole unit (shared unit end) must be evicted and the head
  // retranslated clean.
  AsmProgram Program = assembleRandom(24);
  DbtConfig Config = optConfig();
  Config.ChainDirectExits = false;
  Config.VerifyDispatchInterval = 1;
  Config.ScrubInterval = 16;
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  StopInfo Stop = Translator.run(Interp, 10000000ULL);
  ASSERT_EQ(Stop.Kind, StopKind::Halted);

  const TranslatedBlock *Victim = nullptr;
  for (const TranslatedBlock &TB : Translator.blocks())
    if (TB.Promoted && TB.UnitBlocks > 1) {
      Victim = &TB;
      break;
    }
  ASSERT_NE(Victim, nullptr) << "no multi-block trace formed";
  uint64_t Guest = Victim->GuestAddr;

  // Flip a byte in the middle of the trace (past the head block's first
  // instructions, i.e. inside the fused portion).
  uint64_t Addr = Victim->CacheAddr + (Victim->CacheSize / 2 & ~7ULL);
  uint8_t Byte;
  Mem.readRaw(Addr, &Byte, 1);
  Byte ^= 0x10;
  Mem.writeRaw(Addr, &Byte, 1);

  EXPECT_FALSE(Translator.verifyGuestBlock(Guest));
  EXPECT_GE(Translator.scrubCodeCache(), 1u);
  EXPECT_GT(Translator.integrityRetranslationCount(), 0u);
  EXPECT_TRUE(Translator.verifyGuestBlock(Guest));
}

TEST(TraceTierTest, WatchdogFiresInsideTraceAndDegradationCompletes) {
  // Under the END policy with a lax hot policy, a promoted loop trace
  // runs check-free; the watchdog must still fire inside it, and the
  // degradation ladder (which drops the tier back to Base before
  // retranslating conservatively) must finish the run with the golden
  // output.
  RandomProgramOptions Options;
  Options.Seed = 13;
  Options.LoopTrip = 40;
  AsmProgram Program = assembleOk(generateRandomProgram(Options));

  DbtConfig Config = optConfig(Technique::Rcf);
  Config.Policy = CheckPolicy::End;
  Config.HotPolicy = CheckPolicy::End;
  Config.SuperblockLimit = 4;
  Config.ChainDirectExits = true;

  uint64_t Golden;
  {
    DbtRun Clean(Program, Config);
    ASSERT_TRUE(Clean.Loaded);
    ASSERT_EQ(Clean.Stop.Kind, StopKind::Halted);
    Golden = hashOutput(Clean.Interp.output());
  }

  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  RecoveryConfig RC;
  RC.CheckpointInterval = 200;
  RC.WatchdogBound = 60; // Far below the trace's check-free stretch.
  RecoveryManager Manager(Interp, Translator, RC);
  RecoveryReport Report = Manager.run(10000000);

  EXPECT_GT(Report.NumWatchdogFires, 0u);
  EXPECT_TRUE(Report.Completed)
      << getTrapKindName(Report.FinalStop.Trap);
  EXPECT_EQ(hashOutput(Interp.output()), Golden);
}

//===----------------------------------------------------------------------===//
// Formal model: adaptive placement loses no coverage
//===----------------------------------------------------------------------===//

/// The optimizing tier sinks checks to back-edge and exit blocks in hot
/// regions while updates keep running everywhere. Over the Section 4
/// model this placement detects *exactly* what per-block checking
/// detects: a wrong signature persists across unchecked blocks (error
/// stickiness), every cycle contains a back-edge block, and every
/// terminating walk ends in an exit block — so some masked-in check
/// still observes the discrepancy.
class AdaptiveMaskPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdaptiveMaskPropertyTest, BackEdgeMaskDetectsExactlyAllBB) {
  Prng Rng(GetParam());
  sig::AbstractCfg Cfg = sig::AbstractCfg::random(Rng, 12);
  std::vector<bool> Mask = sig::backEdgeAndExitMask(Cfg);
  std::unique_ptr<sig::Scheme> Schemes[] = {
      sig::makeEdgCfScheme(), sig::makeRcfScheme(), sig::makeEcfScheme()};
  for (auto &S : Schemes) {
    sig::ConditionReport Full = sig::verifySingleErrorDetection(
        *S, Cfg, /*PathLen=*/40, /*ContinueSteps=*/48, GetParam() * 3 + 1);
    sig::ConditionReport Masked = sig::verifySingleErrorDetection(
        *S, Cfg, /*PathLen=*/40, /*ContinueSteps=*/48, GetParam() * 3 + 1,
        &Mask);
    EXPECT_EQ(Masked.Undetected, Full.Undetected)
        << S->name() << ": relaxed placement lost coverage";
    EXPECT_EQ(Masked.FalsePositives, 0u) << S->name();
    EXPECT_EQ(Masked.ErrorsTotal, Full.ErrorsTotal) << S->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptiveMaskPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));
