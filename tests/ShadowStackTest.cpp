//===- ShadowStackTest.cpp - Shadow return stack tests --------------------------===//
//
// The adversarial-mode shadow return stack: clean-run transparency,
// forged-return detection under every signature technique, recovery
// (rollback restores ring depth and contents), watchdog interaction
// mid-call-chain, and push/pop pairing across superblock fusion and the
// optimizing tier (property test over random call graphs).
//
//===----------------------------------------------------------------------===//

#include "dbt/Dbt.h"
#include "fault/Campaign.h"
#include "recovery/Recovery.h"
#include "support/Format.h"
#include "support/Prng.h"
#include "vm/Layout.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

AsmProgram assembleOk(const std::string &Source) {
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  return std::move(Result.Program);
}

/// A guest function that discards its genuine return address and forges
/// one pointing at `evil` — the attack every signature scheme accepts
/// (the forged target is a valid block entry) and the shadow stack does
/// not.
AsmProgram forgedReturnProgram() {
  return assembleOk(".entry main\n.code\n"
                    "main:\n"
                    "  movi r1, 1\n"
                    "  call victim\n"
                    "  out r1\n"
                    "  halt\n"
                    "victim:\n"
                    "  pop r2\n"        // Genuine return address...
                    "  movi r2, evil\n" // ...replaced wholesale.
                    "  push r2\n"
                    "  ret\n"
                    "evil:\n"
                    "  movi r1, 666\n"
                    "  out r1\n"
                    "  halt\n");
}

/// Random call DAG: function i only calls functions j > i, so every
/// program terminates, but call sites, chain depth and interleaved
/// arithmetic vary with the seed. Exercises push/pop pairing through
/// whatever block shapes the translator forms.
std::string generateCallGraphProgram(uint64_t Seed) {
  Prng Rng(Seed);
  unsigned NumFuncs = 3 + static_cast<unsigned>(Rng.nextBelow(5));
  std::string S = ".entry main\n.code\n";
  S += "main:\n  movi r1, 7\n  movi r2, 3\n";
  unsigned MainCalls = 1 + static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned C = 0; C < MainCalls; ++C)
    S += "  call f0\n";
  S += "  out r1\n  halt\n";
  for (unsigned F = 0; F < NumFuncs; ++F) {
    S += formatString("f%u:\n", F);
    unsigned Ops = 1 + static_cast<unsigned>(Rng.nextBelow(4));
    for (unsigned O = 0; O < Ops; ++O) {
      switch (Rng.nextBelow(3)) {
      case 0:
        S += formatString("  addi r1, r1, %u\n",
                          1 + unsigned(Rng.nextBelow(9)));
        break;
      case 1:
        S += formatString("  muli r2, r2, %u\n",
                          2 + unsigned(Rng.nextBelow(3)));
        break;
      default:
        S += "  add r1, r1, r2\n";
        break;
      }
    }
    // Call up to two strictly-later functions (possibly with a
    // caller-saved spill around the call, like real codegen).
    for (unsigned C = 0; C < 2 && F + 1 < NumFuncs; ++C) {
      if (Rng.nextBelow(2) == 0)
        continue;
      unsigned Callee =
          F + 1 + static_cast<unsigned>(Rng.nextBelow(NumFuncs - F - 1));
      bool Spill = Rng.nextBelow(2) == 0;
      if (Spill)
        S += "  push r2\n";
      S += formatString("  call f%u\n", Callee);
      if (Spill)
        S += "  pop r2\n";
    }
    S += "  ret\n";
  }
  return S;
}

struct RunResult {
  std::string Output;
  StopInfo Stop;
  uint64_t Pushes = 0;
  uint64_t Checks = 0;
};

RunResult runUnder(const AsmProgram &Program, DbtConfig Config,
                   uint64_t MaxInsns = 10000000) {
  telemetry::MetricsRegistry Registry;
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config, &Registry);
  EXPECT_TRUE(Translator.load(Program, Interp.state()))
      << Translator.loadError();
  RunResult R;
  R.Stop = Translator.run(Interp, MaxInsns);
  R.Output = Interp.output();
  telemetry::RegistrySnapshot Snap = Registry.snapshot();
  R.Pushes = Snap.counterOr("cfc.shadow_stack.pushes_emitted");
  R.Checks = Snap.counterOr("cfc.shadow_stack.checks_emitted");
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Transparency and detection
//===----------------------------------------------------------------------===//

TEST(ShadowStackTest, CleanCallHeavyRunIsTransparent) {
  AsmProgram Program = assembleWorkload("186.crafty");
  DbtConfig Plain;
  Plain.Tech = Technique::EdgCf;
  DbtConfig Shadowed = Plain;
  Shadowed.ShadowStack = true;

  RunResult Ref = runUnder(Program, Plain);
  RunResult Shadow = runUnder(Program, Shadowed);
  ASSERT_EQ(Ref.Stop.Kind, StopKind::Halted);
  ASSERT_EQ(Shadow.Stop.Kind, StopKind::Halted)
      << "spurious shadow-stack violation on a clean run";
  EXPECT_EQ(Shadow.Output, Ref.Output);
  EXPECT_GT(Shadow.Pushes, 0u);
  EXPECT_GT(Shadow.Checks, 0u);
  EXPECT_EQ(Ref.Pushes, 0u);
}

TEST(ShadowStackTest, ForgedReturnEvadesSignaturesButNotShadowStack) {
  AsmProgram Program = forgedReturnProgram();
  // Without the shadow stack the forged return lands on a valid block
  // entry: EdgCF derives the signature from the popped value itself, so
  // the run completes with the attacker's output — a true evasion.
  DbtConfig Plain;
  Plain.Tech = Technique::EdgCf;
  RunResult Evaded = runUnder(Program, Plain);
  ASSERT_EQ(Evaded.Stop.Kind, StopKind::Halted);
  EXPECT_NE(Evaded.Output.find("666"), std::string::npos);

  DbtConfig Shadowed = Plain;
  Shadowed.ShadowStack = true;
  RunResult Caught = runUnder(Program, Shadowed);
  ASSERT_EQ(Caught.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(Caught.Stop.Trap, TrapKind::BreakTrap);
  EXPECT_EQ(Caught.Stop.BreakCode, BrkShadowStackViolation);
  EXPECT_EQ(Caught.Output.find("666"), std::string::npos);
}

TEST(ShadowStackTest, ComposesUnderEverySignatureTechnique) {
  AsmProgram Program = forgedReturnProgram();
  struct Case {
    Technique Tech;
    bool Eager;
  };
  for (const Case &C :
       {Case{Technique::None, false}, Case{Technique::EdgCf, false},
        Case{Technique::Rcf, false}, Case{Technique::Ecf, false},
        Case{Technique::Cfcss, true}, Case{Technique::Ecca, true}}) {
    DbtConfig Config;
    Config.Tech = C.Tech;
    Config.EagerTranslate = C.Eager;
    Config.ShadowStack = true;
    RunResult R = runUnder(Program, Config);
    ASSERT_EQ(R.Stop.Kind, StopKind::Trapped)
        << "technique " << getTechniqueName(C.Tech);
    EXPECT_EQ(R.Stop.BreakCode, BrkShadowStackViolation)
        << "technique " << getTechniqueName(C.Tech);
  }
}

TEST(ShadowStackTest, UnwindingPastTheRingWrapTraps) {
  // Call chains deeper than ShadowStackSlots wrap the ring and lose the
  // oldest frames; unwinding past the wrap point must surface as a
  // violation (a documented bound), not as silent acceptance.
  std::string S = ".entry main\n.code\n"
                  "main:\n";
  S += formatString("  movi r1, %u\n", unsigned(ShadowStackSlots) + 40);
  S += "  call rec\n"
       "  out r1\n"
       "  halt\n"
       "rec:\n"
       "  jnzr r1, deeper\n"
       "  ret\n"
       "deeper:\n"
       "  addi r1, r1, -1\n"
       "  call rec\n"
       "  ret\n";
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  Config.ShadowStack = true;
  RunResult R = runUnder(assembleOk(S), Config, 50000000);
  ASSERT_EQ(R.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(R.Stop.BreakCode, BrkShadowStackViolation);
}

//===----------------------------------------------------------------------===//
// Recovery interaction
//===----------------------------------------------------------------------===//

TEST(ShadowStackTest, RollbackRestoresRingDepthAndContents) {
  // A transient branch fault detected mid-call-chain rolls back to a
  // checkpoint taken at some other call depth. RegSSP lives in CpuState
  // and the ring lives below the code cache where the page-write
  // observer journals it, so rollback must restore both — any desync
  // would trap 0x5AC on a later return and the run could not finish
  // with the golden output.
  AsmProgram Program = assembleWorkload("186.crafty");
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  Config.ShadowStack = true;
  FaultCampaign Campaign(Program, Config);
  ASSERT_TRUE(Campaign.prepare(10000000));

  RecoveryConfig RC;
  RC.CheckpointInterval = 400;
  unsigned Recovered = 0, Examined = 0;
  for (const PlannedFault &Fault : Campaign.plan(60, 23, SiteClass::Any)) {
    if (Fault.Category == BranchErrorCategory::NoError)
      continue;
    if (Examined++ >= 12)
      break;
    FaultCampaign::RecoveryInjection R = Campaign.injectWithRecovery(Fault, RC);
    if (R.Result == Outcome::Recovered)
      ++Recovered;
  }
  EXPECT_GT(Recovered, 0u)
      << "no fault recovered to the golden output with the shadow "
         "stack on — ring state is not rolling back";
}

TEST(ShadowStackTest, WatchdogMidCallChainDoesNotDesync) {
  // The watchdog fires between a call's push and its return check, the
  // recovery manager rolls back and degrades the translator (which
  // flushes and retranslates, keeping ShadowStack set). Frames pushed
  // before the flush must still satisfy the checks emitted after it.
  AsmProgram Program = assembleWorkload("186.crafty");
  DbtConfig Config;
  Config.Tech = Technique::Rcf;
  Config.Policy = CheckPolicy::End;
  Config.SuperblockLimit = 4;
  Config.ChainDirectExits = true;
  Config.ShadowStack = true;

  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  uint64_t Golden = [&Program, &Config]() {
    Memory M2;
    Interpreter I2(M2);
    Dbt T2(M2, Config);
    EXPECT_TRUE(T2.load(Program, I2.state()));
    EXPECT_EQ(T2.run(I2, 50000000).Kind, StopKind::Halted);
    return hashOutput(I2.output());
  }();

  RecoveryConfig RC;
  RC.CheckpointInterval = 300;
  RC.WatchdogBound = 80; // Below the End policy's check-free stretches.
  RecoveryManager Manager(Interp, Translator, RC);
  RecoveryReport Report = Manager.run(50000000);

  EXPECT_GT(Report.NumWatchdogFires, 0u);
  EXPECT_TRUE(Report.Completed) << getTrapKindName(Report.FinalStop.Trap);
  EXPECT_EQ(hashOutput(Interp.output()), Golden);
}

//===----------------------------------------------------------------------===//
// Pairing across translator configurations (property test)
//===----------------------------------------------------------------------===//

TEST(ShadowStackTest, PushPopPairingSurvivesFusionAndOptTier) {
  // Superblock fusion folds call-carrying blocks into larger units and
  // the optimizing tier re-forms hot traces; both must keep every
  // call-side push paired with its return-side check. Any unpaired
  // sequence either desyncs the ring (spurious 0x5AC, run traps) or
  // diverges the output.
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    AsmProgram Program = assembleOk(generateCallGraphProgram(Seed));
    for (int Variant = 0; Variant < 3; ++Variant) {
      DbtConfig Config;
      Config.Tech = Technique::EdgCf;
      switch (Variant) {
      case 0: // Plain base tier.
        break;
      case 1: // Aggressive fusion + chaining.
        Config.SuperblockLimit = 6;
        Config.ChainDirectExits = true;
        break;
      default: // Optimizing trace tier.
        Config.Tier = DbtTier::Opt;
        Config.SuperblockLimit = 4;
        Config.ChainDirectExits = true;
        break;
      }
      RunResult Ref = runUnder(Program, Config);
      ASSERT_EQ(Ref.Stop.Kind, StopKind::Halted)
          << "seed " << Seed << " variant " << Variant;
      Config.ShadowStack = true;
      RunResult Shadow = runUnder(Program, Config);
      ASSERT_EQ(Shadow.Stop.Kind, StopKind::Halted)
          << "seed " << Seed << " variant " << Variant
          << ": spurious shadow-stack trap (unpaired push/check)";
      EXPECT_EQ(Shadow.Output, Ref.Output)
          << "seed " << Seed << " variant " << Variant;
      EXPECT_GT(Shadow.Pushes, 0u) << "seed " << Seed;
      EXPECT_EQ(Shadow.Pushes > 0, Shadow.Checks > 0);
    }
  }
}
