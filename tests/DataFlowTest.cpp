//===- DataFlowTest.cpp - Tests for the data-flow checking extension -----------===//

#include "cfc/DataFlow.h"
#include "cfg/Cfg.h"
#include "fault/RegisterFault.h"
#include "vm/Layout.h"
#include "vm/Loader.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace cfed;

//===----------------------------------------------------------------------===//
// Expansion unit tests.
//===----------------------------------------------------------------------===//

TEST(DfcExpandTest, AluDuplicatesIntoShadows) {
  dfc::Expansion E = dfc::expand(insn::rrr(Opcode::Add, 1, 2, 3));
  ASSERT_EQ(E.Before.size(), 1u);
  EXPECT_TRUE(E.After.empty());
  const Instruction &S = E.Before[0];
  EXPECT_EQ(S.Op, Opcode::Add);
  EXPECT_EQ(S.A, shadowIntReg(1));
  EXPECT_EQ(S.B, shadowIntReg(2));
  EXPECT_EQ(S.C, shadowIntReg(3));
}

TEST(DfcExpandTest, ImmediatePreserved) {
  dfc::Expansion E = dfc::expand(insn::rri(Opcode::AddI, 4, 4, -7));
  ASSERT_EQ(E.Before.size(), 1u);
  EXPECT_EQ(E.Before[0].Imm, -7);
  EXPECT_EQ(E.Before[0].A, shadowIntReg(4));
}

TEST(DfcExpandTest, CMovKeepsConditionCode) {
  dfc::Expansion E = dfc::expand(insn::cmov(1, 2, CondCode::LE));
  ASSERT_EQ(E.Before.size(), 1u);
  EXPECT_EQ(E.Before[0].cond(), CondCode::LE);
  EXPECT_EQ(E.Before[0].A, shadowIntReg(1));
}

TEST(DfcExpandTest, ComparesNotDuplicated) {
  EXPECT_TRUE(dfc::expand(insn::rr(Opcode::Cmp, 1, 2)).Before.empty());
  EXPECT_TRUE(dfc::expand(insn::ri(Opcode::CmpI, 1, 5)).Before.empty());
  EXPECT_TRUE(dfc::expand(insn::rr(Opcode::FCmp, 1, 2)).Before.empty());
}

TEST(DfcExpandTest, LoadsResync) {
  dfc::Expansion E = dfc::expand(insn::rri(Opcode::Ld, 5, 6, 8));
  EXPECT_TRUE(E.Before.empty());
  ASSERT_EQ(E.After.size(), 1u);
  EXPECT_EQ(E.After[0].Op, Opcode::Mov);
  EXPECT_EQ(E.After[0].A, shadowIntReg(5));
  EXPECT_EQ(E.After[0].B, 5);
}

TEST(DfcExpandTest, DivResyncsInsteadOfDuplicating) {
  dfc::Expansion E = dfc::expand(insn::rrr(Opcode::Div, 1, 2, 3));
  EXPECT_TRUE(E.Before.empty());
  ASSERT_EQ(E.After.size(), 1u);
  EXPECT_EQ(E.After[0].Op, Opcode::Mov);
}

TEST(DfcExpandTest, StoreChecksAddressAndValue) {
  Instruction Store(Opcode::St, /*base=*/2, /*value=*/3, 0, 16);
  dfc::Expansion E = dfc::expand(Store);
  // Two xor/jzr/brk triplets.
  ASSERT_EQ(E.Before.size(), 6u);
  EXPECT_EQ(E.Before[0].Op, Opcode::Xor);
  EXPECT_EQ(E.Before[2].Op, Opcode::Brk);
  EXPECT_EQ(E.Before[2].Imm, BrkDataFlowError);
  EXPECT_TRUE(E.After.empty());
}

TEST(DfcExpandTest, OutChecksValue) {
  dfc::Expansion E = dfc::expand(insn::r(Opcode::Out, 7));
  ASSERT_EQ(E.Before.size(), 3u);
  EXPECT_EQ(E.Before[0].B, 7);
  EXPECT_EQ(E.Before[0].C, shadowIntReg(7));
}

TEST(DfcExpandTest, FpOpsDuplicateIntoFpShadows) {
  dfc::Expansion E = dfc::expand(insn::rrr(Opcode::FMul, 1, 2, 3));
  ASSERT_EQ(E.Before.size(), 1u);
  EXPECT_EQ(E.Before[0].A, shadowFpReg(1));
  dfc::Expansion X = dfc::expand(insn::rr(Opcode::IToF, 2, 5));
  ASSERT_EQ(X.Before.size(), 1u);
  EXPECT_EQ(X.Before[0].A, shadowFpReg(2));
  EXPECT_EQ(X.Before[0].B, shadowIntReg(5));
}

//===----------------------------------------------------------------------===//
// End-to-end semantics and detection.
//===----------------------------------------------------------------------===//

namespace {

std::string runNativeOutput(const AsmProgram &Program) {
  Memory Mem;
  Interpreter Interp(Mem);
  loadProgram(Program, LoadMode::Native, Mem, Interp.state());
  Interp.run(100000000ULL);
  return Interp.output();
}

} // namespace

TEST(DfcEndToEndTest, PreservesWorkloadSemantics) {
  for (const char *Name : {"164.gzip", "181.mcf", "171.swim"}) {
    AsmProgram Program = assembleWorkload(Name);
    std::string Native = runNativeOutput(Program);

    DbtConfig Config;
    Config.Tech = Technique::EdgCf;
    Config.DataFlowCheck = true;
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    ASSERT_TRUE(Translator.load(Program, Interp.state()));
    StopInfo Stop = Translator.run(Interp, 200000000ULL);
    EXPECT_EQ(Stop.Kind, StopKind::Halted)
        << Name << " trap=" << getTrapKindName(Stop.Trap)
        << " code=" << Stop.BreakCode;
    EXPECT_EQ(Interp.output(), Native) << Name;
  }
}

TEST(DfcEndToEndTest, WorkloadsSatisfyStoreFlagDiscipline) {
  // The compare-at-store sequences clobber FLAGS, so the suite must
  // never carry flags across an egress instruction.
  for (const WorkloadInfo &Info : getWorkloadSuite()) {
    AsmProgram Program = assembleWorkload(Info.Name);
    Cfg G = Cfg::build(Program.Code.data(), Program.Code.size(), CodeBase,
                       Program.Entry, Program.CodeLabels);
    EXPECT_TRUE(G.findFlagsAcrossStoreViolations().empty()) << Info.Name;
  }
}

TEST(DfcEndToEndTest, OverheadIsSubstantialButBounded) {
  AsmProgram Program = assembleWorkload("181.mcf");
  auto Cycles = [&Program](bool Dfc) {
    DbtConfig Config;
    Config.Tech = Technique::EdgCf;
    Config.DataFlowCheck = Dfc;
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    EXPECT_TRUE(Translator.load(Program, Interp.state()));
    Translator.run(Interp, 200000000ULL);
    return double(Interp.cycleCount());
  };
  double Ratio = Cycles(true) / Cycles(false);
  EXPECT_GT(Ratio, 1.15); // Duplication is not free...
  EXPECT_LT(Ratio, 4.0);  // ...but stays in the SWIFT-like range.
}

TEST(DfcEndToEndTest, DetectsInjectedRegisterFault) {
  // Flip a bit in a register that feeds a store and watch the 0xDFE
  // report fire.
  AsmResult R = assembleProgram(R"(
.data
buf: .space 64
.code
main:
  movi r1, 123456
  movi r2, buf
  nop
  st [r2], r1
  ld r3, [r2]
  out r3
  halt
)");
  ASSERT_TRUE(R.succeeded());
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  Config.DataFlowCheck = true;
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(R.Program, Interp.state()));
  // Instruction stream under the DBT starts with the EdgCF prologue;
  // flip r1 just before the store's checks by firing on the nop.
  RegisterFaultInjector Hook(/*Instance=*/7, /*Reg=*/1, /*Bit=*/5);
  Interp.setPreInsnHook(&Hook);
  StopInfo Stop = Translator.run(Interp, 100000);
  ASSERT_TRUE(Hook.fired());
  ASSERT_EQ(Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(Stop.Trap, TrapKind::BreakTrap);
  EXPECT_EQ(Stop.BreakCode, BrkDataFlowError);
}

TEST(DfcEndToEndTest, CampaignSlashesSdc) {
  RandomProgramOptions Options;
  Options.Seed = 7;
  Options.NumSegments = 8;
  AsmResult R = assembleProgram(generateRandomProgram(Options));
  ASSERT_TRUE(R.succeeded());

  DbtConfig Plain;
  Plain.Tech = Technique::EdgCf;
  OutcomeCounts Without =
      runRegisterFaultCampaign(R.Program, Plain, 120, 3, 50000000ULL);

  DbtConfig WithDfc = Plain;
  WithDfc.DataFlowCheck = true;
  OutcomeCounts With =
      runRegisterFaultCampaign(R.Program, WithDfc, 120, 3, 50000000ULL);

  EXPECT_EQ(Without.DetectedSig, 0u); // CFC alone cannot see data faults.
  EXPECT_GT(Without.Sdc, 0u);
  EXPECT_GT(With.DetectedSig, 0u);
  EXPECT_LT(With.Sdc, Without.Sdc);
}

TEST(DfcEndToEndTest, ComposesWithEveryTechniqueAndPolicy) {
  RandomProgramOptions Options;
  Options.Seed = 19;
  AsmResult R = assembleProgram(generateRandomProgram(Options));
  ASSERT_TRUE(R.succeeded());
  std::string Native = runNativeOutput(R.Program);
  for (Technique Tech : {Technique::None, Technique::Ecf, Technique::Rcf}) {
    DbtConfig Config;
    Config.Tech = Tech;
    Config.DataFlowCheck = true;
    Config.Policy = CheckPolicy::StoreBB;
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    ASSERT_TRUE(Translator.load(R.Program, Interp.state()));
    StopInfo Stop = Translator.run(Interp, 50000000ULL);
    EXPECT_EQ(Stop.Kind, StopKind::Halted) << getTechniqueName(Tech);
    EXPECT_EQ(Interp.output(), Native) << getTechniqueName(Tech);
  }
}
