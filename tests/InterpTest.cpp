//===- InterpTest.cpp - Tests for the VISA interpreter ------------------------===//

#include "asm/Assembler.h"
#include "vm/Interp.h"
#include "vm/Layout.h"
#include "vm/Loader.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace cfed;

namespace {

struct Runner {
  Memory Mem;
  Interpreter Interp{Mem};
  StopInfo Stop;

  explicit Runner(const std::string &Source, uint64_t MaxInsns = 100000) {
    AsmResult Result = assembleProgram(Source);
    EXPECT_TRUE(Result.succeeded()) << Result.errorText();
    loadProgram(Result.Program, LoadMode::Native, Mem, Interp.state());
    Stop = Interp.run(MaxInsns);
  }

  uint64_t reg(unsigned Index) const { return Interp.state().Regs[Index]; }
  double fp(unsigned Index) const { return Interp.state().FpRegs[Index]; }
};

} // namespace

TEST(InterpTest, HaltStops) {
  Runner R("halt\n");
  EXPECT_EQ(R.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(R.Interp.instructionCount(), 1u);
}

TEST(InterpTest, ArithmeticBasics) {
  Runner R("movi r1, 6\nmovi r2, 7\nmul r3, r1, r2\n"
           "sub r4, r3, r1\nhalt\n");
  EXPECT_EQ(R.reg(3), 42u);
  EXPECT_EQ(R.reg(4), 36u);
}

TEST(InterpTest, DivAndRem) {
  Runner R("movi r1, 17\nmovi r2, 5\ndiv r3, r1, r2\nrem r4, r1, r2\nhalt\n");
  EXPECT_EQ(R.reg(3), 3u);
  EXPECT_EQ(R.reg(4), 2u);
}

TEST(InterpTest, NegativeDivTruncatesTowardZero) {
  Runner R("movi r1, -17\nmovi r2, 5\ndiv r3, r1, r2\nrem r4, r1, r2\nhalt\n");
  EXPECT_EQ(static_cast<int64_t>(R.reg(3)), -3);
  EXPECT_EQ(static_cast<int64_t>(R.reg(4)), -2);
}

TEST(InterpTest, DivByZeroTraps) {
  Runner R("movi r1, 1\nmovi r2, 0\ndiv r3, r1, r2\nhalt\n");
  EXPECT_EQ(R.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(R.Stop.Trap, TrapKind::DivByZero);
}

TEST(InterpTest, CompareAndConditionalBranch) {
  Runner R("movi r1, 5\nmovi r2, 9\ncmp r1, r2\njcc lt, less\n"
           "movi r3, 0\nhalt\nless:\nmovi r3, 1\nhalt\n");
  EXPECT_EQ(R.reg(3), 1u);
}

TEST(InterpTest, UnsignedConditions) {
  // -1 as unsigned is huge: "a" (unsigned >) must see -1 > 1.
  Runner R("movi r1, -1\nmovi r2, 1\ncmp r1, r2\n"
           "setcc r3, a\nsetcc r4, gt\nhalt\n");
  EXPECT_EQ(R.reg(3), 1u);
  EXPECT_EQ(R.reg(4), 0u);
}

TEST(InterpTest, OverflowFlagOnSub) {
  // INT64_MIN - 1 overflows: lt (SF!=OF) must still be correct.
  Runner R("movi r1, 1\nshli r2, r1, 63\n" // r2 = INT64_MIN
           "cmp r2, r1\nsetcc r3, lt\nhalt\n");
  EXPECT_EQ(R.reg(3), 1u);
}

TEST(InterpTest, LoopCountsDown) {
  Runner R("movi r1, 10\nmovi r2, 0\nloop:\nadd r2, r2, r1\n"
           "addi r1, r1, -1\njcc ne, loop\nhalt\n");
  EXPECT_EQ(R.reg(2), 55u);
}

TEST(InterpTest, JzrJnzrIgnoreFlags) {
  Runner R("movi r1, 0\nmovi r2, 3\ncmp r2, r2\n" // ZF set
           "jzr r2, wrong\nmovi r3, 1\njnzr r1, wrong\nmovi r4, 1\nhalt\n"
           "wrong:\nmovi r5, 1\nhalt\n");
  EXPECT_EQ(R.reg(3), 1u);
  EXPECT_EQ(R.reg(4), 1u);
  EXPECT_EQ(R.reg(5), 0u);
}

TEST(InterpTest, CMovTakenAndNotTaken) {
  Runner R("movi r1, 1\nmovi r2, 2\nmovi r3, 10\nmovi r4, 20\n"
           "cmp r1, r2\ncmov r3, r4, lt\ncmov r4, r1, gt\nhalt\n");
  EXPECT_EQ(R.reg(3), 20u);
  EXPECT_EQ(R.reg(4), 20u);
}

TEST(InterpTest, LeaDoesNotTouchFlags) {
  Runner R("movi r1, 1\nmovi r2, 2\ncmp r1, r2\n" // lt
           "lea r3, r1, 100\nsetcc r4, lt\nhalt\n");
  EXPECT_EQ(R.reg(3), 101u);
  EXPECT_EQ(R.reg(4), 1u);
}

TEST(InterpTest, XorClobbersFlags) {
  Runner R("movi r1, 1\nmovi r2, 2\ncmp r1, r2\n" // lt: SF set
           "xor r3, r1, r1\nsetcc r4, eq\nhalt\n");
  // xor set ZF (result 0), so eq is now true even though cmp said lt.
  EXPECT_EQ(R.reg(4), 1u);
}

TEST(InterpTest, MemoryLoadStore) {
  Runner R(".data\nbuf: .space 64\n.code\n"
           "movi r1, buf\nmovi r2, 0x1234\nst [r1+8], r2\n"
           "ld r3, [r1+8]\nstb [r1], r2\nldb r4, [r1]\nhalt\n");
  EXPECT_EQ(R.reg(3), 0x1234u);
  EXPECT_EQ(R.reg(4), 0x34u);
}

TEST(InterpTest, PushPop) {
  Runner R("movi r1, 77\npush r1\nmovi r1, 0\npop r2\nhalt\n");
  EXPECT_EQ(R.reg(2), 77u);
  EXPECT_EQ(R.reg(RegSP), StackTop);
}

TEST(InterpTest, CallRet) {
  Runner R(".entry main\n"
           "f:\nmovi r1, 9\nret\n"
           "main:\ncall f\nmovi r2, 1\nhalt\n");
  EXPECT_EQ(R.reg(1), 9u);
  EXPECT_EQ(R.reg(2), 1u);
  EXPECT_EQ(R.Stop.Kind, StopKind::Halted);
}

TEST(InterpTest, IndirectCallThroughTable) {
  Runner R(".entry main\n"
           "f1:\nmovi r1, 100\nret\n"
           "f2:\nmovi r1, 200\nret\n"
           ".data\ntable: .word f1, f2\n.code\n"
           "main:\nmovi r2, table\nld r3, [r2+8]\ncallr r3\nhalt\n");
  EXPECT_EQ(R.reg(1), 200u);
}

TEST(InterpTest, OutProducesText) {
  Runner R("movi r1, 42\nout r1\nmovi r1, 'X'\noutc r1\nhalt\n");
  EXPECT_EQ(R.Interp.output(), "42\nX");
}

TEST(InterpTest, OutputHashDiffers) {
  Runner A("movi r1, 1\nout r1\nhalt\n");
  Runner B("movi r1, 2\nout r1\nhalt\n");
  EXPECT_NE(hashOutput(A.Interp.output()), hashOutput(B.Interp.output()));
}

TEST(InterpTest, FloatingPoint) {
  Runner R("movi r1, 2\nitof f1, r1\nfmovi f2, 3\nfmul f3, f1, f2\n"
           "fsqrt f4, f3\nftoi r2, f3\nhalt\n");
  EXPECT_DOUBLE_EQ(R.fp(3), 6.0);
  EXPECT_NEAR(R.fp(4), 2.449489, 1e-5);
  EXPECT_EQ(R.reg(2), 6u);
}

TEST(InterpTest, FCmpDrivesBranches) {
  Runner R("fmovi f1, 2\nfmovi f2, 5\nfcmp f1, f2\nsetcc r1, lt\n"
           "setcc r2, eq\nfcmp f2, f2\nsetcc r3, eq\nhalt\n");
  EXPECT_EQ(R.reg(1), 1u);
  EXPECT_EQ(R.reg(2), 0u);
  EXPECT_EQ(R.reg(3), 1u);
}

TEST(InterpTest, FpMemory) {
  Runner R(".data\nv: .space 16\n.code\n"
           "fmovi f1, 7\nmovi r1, v\nfst [r1], f1\nfld f2, [r1]\nhalt\n");
  EXPECT_DOUBLE_EQ(R.fp(2), 7.0);
}

TEST(InterpTest, InsnLimitStops) {
  Runner R("spin: jmp spin\n", /*MaxInsns=*/500);
  EXPECT_EQ(R.Stop.Kind, StopKind::InsnLimit);
  EXPECT_EQ(R.Interp.instructionCount(), 500u);
}

TEST(InterpTest, BrkTrapCarriesCode) {
  Runner R("brk 0xCFE\n");
  EXPECT_EQ(R.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(R.Stop.Trap, TrapKind::BreakTrap);
  EXPECT_EQ(R.Stop.BreakCode, BrkControlFlowError);
}

TEST(InterpTest, JumpToDataTrapsAsExecViolation) {
  // Category F in miniature: a jump into a non-executable region traps.
  Runner R(".data\nd: .word 0\n.code\nmovi r1, d\njmpr r1\nhalt\n");
  EXPECT_EQ(R.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(R.Stop.Trap, TrapKind::ExecViolation);
  EXPECT_EQ(R.Stop.TrapAddr, DataBase);
}

TEST(InterpTest, JumpToUnmappedTraps) {
  Runner R("movi r1, 0x9000000\njmpr r1\nhalt\n");
  EXPECT_EQ(R.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(R.Stop.Trap, TrapKind::ExecViolation);
}

TEST(InterpTest, StoreToCodeTraps) {
  Runner R("movi r1, 0x10000\nmovi r2, 0\nst [r1], r2\nhalt\n");
  EXPECT_EQ(R.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(R.Stop.Trap, TrapKind::WriteViolation);
}

TEST(InterpTest, ReadUnmappedTraps) {
  Runner R("movi r1, 0x9000000\nld r2, [r1]\nhalt\n");
  EXPECT_EQ(R.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(R.Stop.Trap, TrapKind::ReadViolation);
}

TEST(InterpTest, MisalignedFetchDecodesBytes) {
  // VISA has no alignment requirement (like IA-32): jumping into the
  // middle of an instruction decodes whatever bytes are there.
  Runner R("movi r1, 0x10004\njmpr r1\nhalt\n", 10);
  // The outcome depends on the bytes; the point is it does not assert and
  // either traps or keeps executing.
  EXPECT_TRUE(R.Stop.Kind == StopKind::Trapped ||
              R.Stop.Kind == StopKind::InsnLimit ||
              R.Stop.Kind == StopKind::Halted);
}

TEST(InterpTest, CycleAccountingMatchesCosts) {
  Runner R("movi r1, 1\nfadd f1, f2, f3\nhalt\n");
  uint64_t Expected = getOpcodeCost(Opcode::MovI) +
                      getOpcodeCost(Opcode::FAdd) +
                      getOpcodeCost(Opcode::Halt);
  EXPECT_EQ(R.Interp.cycleCount(), Expected);
}

namespace {

/// Observer recording branch executions.
struct RecordingObserver : BranchObserver {
  struct Event {
    uint64_t Addr;
    bool Taken;
    uint64_t NextPC;
  };
  std::vector<Event> Events;
  void onBranch(uint64_t InsnAddr, const Instruction &, const Flags &,
                bool Taken, uint64_t NextPC) override {
    Events.push_back({InsnAddr, Taken, NextPC});
  }
};

/// Hook that flips one offset bit at a given dynamic branch instance.
struct OffsetFlipHook : FaultHook {
  uint64_t TriggerCount;
  unsigned Bit;
  uint64_t Seen = 0;
  bool Fired = false;
  OffsetFlipHook(uint64_t TriggerCount, unsigned Bit)
      : TriggerCount(TriggerCount), Bit(Bit) {}
  void apply(uint64_t, Instruction &I, Flags &, const CpuState &) override {
    if (++Seen == TriggerCount) {
      I.Imm = static_cast<int32_t>(static_cast<uint32_t>(I.Imm) ^
                                   (1u << Bit));
      Fired = true;
    }
  }
};

/// Hook that flips one flag bit at a given dynamic branch instance.
struct FlagFlipHook : FaultHook {
  uint64_t TriggerCount;
  unsigned Bit;
  uint64_t Seen = 0;
  FlagFlipHook(uint64_t TriggerCount, unsigned Bit)
      : TriggerCount(TriggerCount), Bit(Bit) {}
  void apply(uint64_t, Instruction &, Flags &F, const CpuState &) override {
    if (++Seen == TriggerCount)
      F = F.withBitFlipped(Bit);
  }
};

} // namespace

TEST(InterpTest, BranchObserverSeesTakenAndNotTaken) {
  Memory Mem;
  Interpreter Interp(Mem);
  AsmResult Result = assembleProgram(
      "movi r1, 2\nloop:\naddi r1, r1, -1\njcc ne, loop\nhalt\n");
  ASSERT_TRUE(Result.succeeded());
  loadProgram(Result.Program, LoadMode::Native, Mem, Interp.state());
  RecordingObserver Observer;
  Interp.setBranchObserver(&Observer);
  Interp.run(1000);
  ASSERT_EQ(Observer.Events.size(), 2u);
  EXPECT_TRUE(Observer.Events[0].Taken);
  EXPECT_FALSE(Observer.Events[1].Taken);
}

TEST(InterpTest, FaultHookFlipsBranchOffset) {
  Memory Mem;
  Interpreter Interp(Mem);
  // jmp over the halt; flipping bit 3 of the offset (8) turns it into 0,
  // landing on the halt.
  AsmResult Result =
      assembleProgram("jmp skip\nhalt\nskip:\nmovi r1, 1\nhalt\n");
  ASSERT_TRUE(Result.succeeded());
  loadProgram(Result.Program, LoadMode::Native, Mem, Interp.state());
  OffsetFlipHook Hook(1, 3);
  Interp.setFaultHook(&Hook);
  StopInfo Stop = Interp.run(100);
  EXPECT_TRUE(Hook.Fired);
  EXPECT_EQ(Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Interp.state().Regs[1], 0u);
}

TEST(InterpTest, FaultHookFlipsFlagsTransiently) {
  Memory Mem;
  Interpreter Interp(Mem);
  // r1=1, r2=1: eq. Flip ZF at the branch -> falls through. The setcc
  // after the branch must still see the *architectural* flags (eq).
  AsmResult Result = assembleProgram(
      "movi r1, 1\nmovi r2, 1\ncmp r1, r2\njcc eq, taken\n"
      "setcc r3, eq\nhalt\ntaken:\nmovi r4, 1\nhalt\n");
  ASSERT_TRUE(Result.succeeded());
  loadProgram(Result.Program, LoadMode::Native, Mem, Interp.state());
  FlagFlipHook Hook(1, 0); // Flip ZF.
  Interp.setFaultHook(&Hook);
  Interp.run(100);
  EXPECT_EQ(Interp.state().Regs[4], 0u); // Mistaken branch: fell through.
  EXPECT_EQ(Interp.state().Regs[3], 1u); // Architectural flags intact.
}

TEST(InterpTest, TrampWithoutDbtHooksIsIllegal) {
  Memory Mem;
  Interpreter Interp(Mem);
  Mem.mapRegion(CodeBase, PageSize, PermRX);
  uint8_t Buffer[InsnSize];
  insn::i(Opcode::Tramp, 0x1234).encode(Buffer);
  Mem.writeRaw(CodeBase, Buffer, InsnSize);
  Interp.state().PC = CodeBase;
  StopInfo Stop = Interp.run(10);
  EXPECT_EQ(Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(Stop.Trap, TrapKind::IllegalInsn);
}

TEST(InterpTest, SelfModifyingCodeSeesNewBytes) {
  // The program overwrites one of its own instructions through a plain
  // store, then executes it: the predecoded-page cache must observe the
  // write and serve the new bytes.
  Memory Mem;
  Interpreter Interp(Mem);
  constexpr uint64_t Base = 0x10000;
  Mem.mapRegion(Base, PageSize, PermRWX);

  auto Poke = [&](uint64_t Addr, const Instruction &I) {
    uint8_t Buffer[InsnSize];
    I.encode(Buffer);
    Mem.writeRaw(Addr, Buffer, InsnSize);
  };

  // The encoding of "movi r2, 99", split into halves a movi can carry.
  uint8_t NewBytes[InsnSize];
  insn::ri(Opcode::MovI, 2, 99).encode(NewBytes);
  uint32_t Low = 0, High = 0;
  std::memcpy(&Low, NewBytes, 4);
  std::memcpy(&High, NewBytes + 4, 4);

  Poke(Base + 0x00, insn::ri(Opcode::MovI, 1, static_cast<int32_t>(Low)));
  Poke(Base + 0x08, insn::ri(Opcode::MovI, 4, static_cast<int32_t>(High)));
  Poke(Base + 0x10, insn::rri(Opcode::ShlI, 4, 4, 32));
  Poke(Base + 0x18, insn::rrr(Opcode::Or, 1, 1, 4));
  Poke(Base + 0x20, insn::ri(Opcode::MovI, 5, static_cast<int32_t>(Base + 0x30)));
  Poke(Base + 0x28, insn::rri(Opcode::St, 5, 1, 0));
  Poke(Base + 0x30, insn::ri(Opcode::MovI, 2, 1)); // Overwritten above.
  Poke(Base + 0x38, insn::none(Opcode::Halt));

  Interp.state().PC = Base;
  StopInfo Stop = Interp.run(100);
  EXPECT_EQ(Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Interp.state().Regs[2], 99u);
  // The store forced a second whole-page decode.
  EXPECT_GE(Mem.predecodeMissCount(), 2u);
}

TEST(InterpTest, ImageRoundTripExecutesIdentically) {
  // serialize -> loadProgramImage -> run must match a direct load.
  const char *Source = ".data\nv: .word 5\n.code\nmain:\n"
                       "movi r1, v\nld r2, [r1]\nout r2\nhalt\n"
                       ".entry main\n";
  Runner Direct(Source);
  ASSERT_EQ(Direct.Stop.Kind, StopKind::Halted);

  AsmResult Result = assembleProgram(Source);
  ASSERT_TRUE(Result.succeeded());
  std::vector<uint8_t> Image = serializeProgram(Result.Program);
  Memory Mem;
  Interpreter Interp(Mem);
  std::string Error;
  ASSERT_TRUE(loadProgramImage(Image.data(), Image.size(), LoadMode::Native,
                               Mem, Interp.state(), Error))
      << Error;
  StopInfo Stop = Interp.run(100000);
  EXPECT_EQ(Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Interp.output(), Direct.Interp.output());
}

TEST(InterpTest, CheckedLoadRejectsEntryOutsideCode) {
  AsmResult Result = assembleProgram("main:\nhalt\n");
  ASSERT_TRUE(Result.succeeded());
  Result.Program.Entry = DataBase; // Entry must lie inside the code segment.
  Memory Mem;
  Interpreter Interp(Mem);
  std::string Error;
  EXPECT_FALSE(loadProgramChecked(Result.Program, LoadMode::Native, Mem,
                                  Interp.state(), Error));
  EXPECT_NE(Error.find("entry"), std::string::npos) << Error;
  // Nothing was mapped: the interpreter has nothing to run.
  EXPECT_FALSE(Mem.isMapped(CodeBase));
}

TEST(InterpTest, CheckedLoadRejectsOversizedData) {
  AsmResult Result = assembleProgram("main:\nhalt\n");
  ASSERT_TRUE(Result.succeeded());
  // Data reaching into the stack region must be rejected, not mapped.
  Result.Program.Data.resize(StackTop - StackSize - DataBase + 1);
  Memory Mem;
  Interpreter Interp(Mem);
  std::string Error;
  EXPECT_FALSE(loadProgramChecked(Result.Program, LoadMode::Native, Mem,
                                  Interp.state(), Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(Mem.isMapped(DataBase));
}
