//===- IntegrityTest.cpp - Tests for DBT self-integrity protection -------------===//
//
// The "guard the guardian" subsystem: code-cache scrubbing, sealed
// metadata, IBTC check words, shadow-signature cross-checks, and the
// checker-targeted fault campaigns (DESIGN.md §10). These run as their
// own ctest executable labelled `integrity` so CI can run the subset
// under sanitizers.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "fault/IntegrityFault.h"
#include "sig/FormalModel.h"
#include "support/CliArgs.h"
#include "support/Prng.h"
#include "vm/Layout.h"
#include "workloads/RandomProgram.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

AsmProgram assembleRandom(uint64_t Seed, unsigned Segments = 6) {
  RandomProgramOptions Options;
  Options.Seed = Seed;
  Options.NumSegments = Segments;
  Options.LoopTrip = 12;
  AsmResult Result = assembleProgram(generateRandomProgram(Options));
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  return Result.Program;
}

/// The full assurance configuration the checker-targeted campaign runs:
/// unchained dispatch with per-dispatch verification, frequent scrubs
/// and shadow signatures.
DbtConfig assuranceConfig() {
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  Config.Flavor = UpdateFlavor::CMovcc;
  Config.ChainDirectExits = false;
  Config.VerifyDispatchInterval = 1;
  Config.ScrubInterval = 16;
  Config.ShadowSignature = true;
  return Config;
}

/// Golden output of \p Program under \p Config (no faults).
std::string goldenOutput(const AsmProgram &Program, const DbtConfig &Config) {
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  EXPECT_TRUE(Translator.load(Program, Interp.state()))
      << Translator.loadError();
  StopInfo Stop = Translator.run(Interp, 10000000ULL);
  EXPECT_EQ(Stop.Kind, StopKind::Halted) << getTrapKindName(Stop.Trap);
  return Interp.output();
}

} // namespace

//===----------------------------------------------------------------------===//
// Scrubbing and dispatch verification
//===----------------------------------------------------------------------===//

TEST(IntegrityTest, ScrubFindsNothingOnCleanCache) {
  AsmProgram Program = assembleRandom(5);
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, assuranceConfig());
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  StopInfo Stop = Translator.run(Interp, 10000000ULL);
  ASSERT_EQ(Stop.Kind, StopKind::Halted);
  EXPECT_GT(Translator.integrityScrubCount(), 0u);
  EXPECT_EQ(Translator.integrityMismatchCount(), 0u);
  EXPECT_EQ(Translator.scrubCodeCache(), 0u);
}

TEST(IntegrityTest, ScrubQuarantinesAndRetranslatesCorruptedBlock) {
  AsmProgram Program = assembleRandom(6);
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, assuranceConfig());
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  StopInfo Stop = Translator.run(Interp, 10000000ULL);
  ASSERT_EQ(Stop.Kind, StopKind::Halted);
  ASSERT_FALSE(Translator.blocks().empty());

  const TranslatedBlock &Victim = *Translator.blocks().begin();
  uint64_t Guest = Victim.GuestAddr;
  uint64_t Addr = Victim.CacheAddr + Victim.CacheSize / 2;
  uint8_t Byte;
  Mem.readRaw(Addr, &Byte, 1);
  Byte ^= 0x10;
  Mem.writeRaw(Addr, &Byte, 1);

  EXPECT_FALSE(Translator.verifyGuestBlock(Guest));
  uint64_t MismatchesBefore = Translator.integrityMismatchCount();
  EXPECT_GE(Translator.scrubCodeCache(), 1u);
  EXPECT_GT(Translator.integrityMismatchCount(), MismatchesBefore);
  // The unit was quarantined and its head eagerly retranslated; whatever
  // now lives at the guest address verifies clean.
  EXPECT_GT(Translator.integrityRetranslationCount(), 0u);
  EXPECT_TRUE(Translator.verifyGuestBlock(Guest));
}

TEST(IntegrityTest, MidRunCodeCorruptionSelfHealsToGoldenOutput) {
  // A single-bit flip of a translated block's bytes mid-run, injected
  // exactly the way the checker-targeted campaign does it: the run must
  // finish with the fault-free output and the integrity counters must
  // show the machinery (dispatch verify or scrub) actually fired.
  AsmProgram Program = assembleRandom(7);
  DbtConfig Config = assuranceConfig();
  std::string Golden = goldenOutput(Program, Config);

  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  IntegrityFaultInjector Hook(Mem, Translator, IntegrityTarget::CodeByte,
                              /*Instance=*/2500, /*Pick=*/0x9e3779b9,
                              /*Bit=*/3);
  Interp.setPreInsnHook(&Hook);
  StopInfo Stop = Translator.run(Interp, 40000000ULL);
  ASSERT_EQ(Stop.Kind, StopKind::Halted) << getTrapKindName(Stop.Trap);
  EXPECT_TRUE(Hook.fired());
  EXPECT_EQ(Interp.output(), Golden);
  EXPECT_GT(Translator.integrityMismatchCount(), 0u);
  EXPECT_GT(Translator.integrityRetranslationCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Metadata hardening
//===----------------------------------------------------------------------===//

TEST(IntegrityTest, FlippedBlockMetadataCaughtByScrub) {
  // Every word of the sealed header is covered: a flip of GuestAddr,
  // CacheAddr or CacheSize breaks the integrity word even though the
  // cache bytes themselves are intact.
  for (unsigned Word = 0; Word < 3; ++Word) {
    AsmProgram Program = assembleRandom(8);
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, assuranceConfig());
    ASSERT_TRUE(Translator.load(Program, Interp.state()));
    StopInfo Stop = Translator.run(Interp, 10000000ULL);
    ASSERT_EQ(Stop.Kind, StopKind::Halted);
    ASSERT_TRUE(Translator.faultFlipBlockMetaBit(1, Word, 7));
    EXPECT_GE(Translator.scrubCodeCache(), 1u)
        << "metadata word " << Word << " flip went unnoticed";
    EXPECT_GT(Translator.integrityMismatchCount(), 0u);
  }
}

TEST(IntegrityTest, FlippedIbtcEntryDroppedOnNextProbe) {
  // Flip a bit of a live IBTC entry's cached target between two runs of
  // the same program on one translator: the re-run probes the same
  // direct-mapped slots, the check word no longer matches, and the
  // entry is dropped to the (correct) slow path instead of being
  // followed.
  AsmProgram Program = assembleRandom(9);
  DbtConfig Config = assuranceConfig();
  std::string Golden = goldenOutput(Program, Config);

  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  StopInfo Stop = Translator.run(Interp, 10000000ULL);
  ASSERT_EQ(Stop.Kind, StopKind::Halted);
  ASSERT_TRUE(Translator.faultFlipIbtcBit(0, 9))
      << "expected at least one live IBTC entry";

  Interpreter Rerun(Mem);
  ASSERT_TRUE(Translator.load(Program, Rerun.state()));
  uint64_t MismatchesBefore = Translator.integrityMismatchCount();
  Stop = Translator.run(Rerun, 10000000ULL);
  ASSERT_EQ(Stop.Kind, StopKind::Halted) << getTrapKindName(Stop.Trap);
  EXPECT_EQ(Rerun.output(), Golden);
  EXPECT_GT(Translator.integrityMismatchCount(), MismatchesBefore);
}

//===----------------------------------------------------------------------===//
// Checker-targeted campaign
//===----------------------------------------------------------------------===//

TEST(IntegrityTest, CampaignHasZeroSdcUnderAssuranceConfig) {
  AsmProgram Program = assembleRandom(11, 4);
  IntegrityCampaignResult Result = runIntegrityCampaign(
      Program, assuranceConfig(), /*PerTarget=*/10, /*Seed=*/77,
      /*MaxInsns=*/50000000ULL, /*Jobs=*/2);
  EXPECT_EQ(Result.Injections, 30u);
  OutcomeCounts Totals = Result.totals();
  EXPECT_EQ(Totals.total(), Result.Injections);
  EXPECT_EQ(Totals.Sdc, 0u);
  EXPECT_EQ(Totals.Timeout, 0u);
  // The campaign is not vacuous: some faults bite and are handled.
  EXPECT_GT(Totals.DetectedSig + Totals.Recovered, 0u);
}

TEST(IntegrityTest, CampaignIsJobsInvariant) {
  AsmProgram Program = assembleRandom(12, 4);
  DbtConfig Config = assuranceConfig();
  IntegrityCampaignResult Serial = runIntegrityCampaign(
      Program, Config, /*PerTarget=*/6, /*Seed=*/123, 50000000ULL, 1);
  IntegrityCampaignResult Parallel = runIntegrityCampaign(
      Program, Config, /*PerTarget=*/6, /*Seed=*/123, 50000000ULL, 4);
  for (IntegrityTarget Target : AllIntegrityTargets)
    EXPECT_TRUE(Serial.of(Target) == Parallel.of(Target))
        << getIntegrityTargetName(Target);
}

TEST(IntegrityTest, OutcomeCounterNamesAreWellFormed) {
  EXPECT_STREQ(getIntegrityTargetName(IntegrityTarget::CodeByte), "code");
  EXPECT_STREQ(getIntegrityTargetName(IntegrityTarget::TableEntry), "meta");
  EXPECT_STREQ(getIntegrityTargetName(IntegrityTarget::SigState), "sig");
  EXPECT_EQ(getIntegrityOutcomeCounterName(IntegrityTarget::CodeByte,
                                           Outcome::Recovered),
            "fault.int_code.recovered");
  EXPECT_EQ(getIntegrityOutcomeCounterName(IntegrityTarget::SigState,
                                           Outcome::DetectedSignature),
            "fault.int_sig.det-sig");
}

//===----------------------------------------------------------------------===//
// Formal model: corrupted-monitor condition
//===----------------------------------------------------------------------===//

TEST(IntegrityTest, FormalModelSeparatesMonitorCorruptionFromCfe) {
  using namespace cfed::sig;
  Prng Rng(21);
  AbstractCfg Cfg = AbstractCfg::random(Rng, 12);
  for (auto Make : {makeEdgCfScheme, makeRcfScheme}) {
    std::unique_ptr<Scheme> S = Make();
    S->prepare(Cfg);
    MonitorCorruptionReport Report =
        verifyMonitorCorruptionDetection(*S, Cfg, /*PathLen=*/40,
                                         /*Seed=*/31);
    ASSERT_GT(Report.FlipsTotal, 0u);
    // Every flip is either flagged by the shadow cross-check or provably
    // dies before any check observes it — there is no third bucket.
    EXPECT_EQ(Report.FlaggedAsMonitor + Report.SilentlyMasked,
              Report.FlipsTotal);
    EXPECT_GT(Report.FlaggedAsMonitor, 0u);
    // Without the shadow, at least some of those same flips would have
    // failed the scheme's own check and been misreported as guest CFEs
    // — the misclassification the 0x5EC break code removes.
    EXPECT_GT(Report.MisclassifiedWithoutShadow, 0u);
    EXPECT_LE(Report.MisclassifiedWithoutShadow, Report.FlipsTotal);
  }
}

//===----------------------------------------------------------------------===//
// Strict CLI parsing helpers
//===----------------------------------------------------------------------===//

TEST(IntegrityTest, CliParseUintIsStrict) {
  uint64_t V = 0;
  EXPECT_TRUE(cli::parseUint("42", V));
  EXPECT_EQ(V, 42u);
  EXPECT_TRUE(cli::parseUint("0x10", V));
  EXPECT_EQ(V, 16u);
  EXPECT_FALSE(cli::parseUint("", V));
  EXPECT_FALSE(cli::parseUint("12abc", V));
  EXPECT_FALSE(cli::parseUint("-3", V));
  EXPECT_FALSE(cli::parseUint("+3", V));
  EXPECT_FALSE(cli::parseUint("99999999999999999999999", V));
  EXPECT_FALSE(cli::parseUint("4 ", V));
}

TEST(IntegrityTest, CliParseDoubleIsStrict) {
  double D = 0;
  EXPECT_TRUE(cli::parseDouble("2.5", D));
  EXPECT_DOUBLE_EQ(D, 2.5);
  EXPECT_FALSE(cli::parseDouble("", D));
  EXPECT_FALSE(cli::parseDouble("2.5x", D));
  EXPECT_FALSE(cli::parseDouble("pct", D));
}

TEST(IntegrityTest, CliSplitFlagSeparatesNameAndValue) {
  cli::Flag F;
  ASSERT_TRUE(cli::splitFlag("--scrub=64", F));
  EXPECT_EQ(F.Name, "--scrub");
  EXPECT_TRUE(F.HasValue);
  EXPECT_EQ(F.Value, "64");
  ASSERT_TRUE(cli::splitFlag("--shadow-sig", F));
  EXPECT_EQ(F.Name, "--shadow-sig");
  EXPECT_FALSE(F.HasValue);
  EXPECT_FALSE(cli::splitFlag("program.s", F));
  EXPECT_FALSE(cli::splitFlag("-n", F));
}
