//===- DbtTest.cpp - Tests for the dynamic binary translator ------------------===//

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "vm/Layout.h"
#include "vm/Loader.h"

#include <gtest/gtest.h>

using namespace cfed;

namespace {

/// Runs a program natively and returns (output, stop).
std::pair<std::string, StopInfo> runNative(const AsmProgram &Program,
                                           uint64_t MaxInsns = 2000000) {
  Memory Mem;
  Interpreter Interp(Mem);
  loadProgram(Program, LoadMode::Native, Mem, Interp.state());
  StopInfo Stop = Interp.run(MaxInsns);
  return {Interp.output(), Stop};
}

struct DbtRun {
  Memory Mem;
  Interpreter Interp{Mem};
  Dbt Translator;
  StopInfo Stop;
  bool Loaded = false;

  DbtRun(const AsmProgram &Program, DbtConfig Config,
         uint64_t MaxInsns = 2000000)
      : Translator(Mem, Config) {
    Loaded = Translator.load(Program, Interp.state());
    if (Loaded)
      Stop = Translator.run(Interp, MaxInsns);
  }
};

AsmProgram assembleOk(const std::string &Source) {
  AsmResult Result = assembleProgram(Source);
  EXPECT_TRUE(Result.succeeded()) << Result.errorText();
  return Result.Program;
}

/// A small program exercising every control-transfer kind: loops,
/// conditional branches, direct and indirect calls, returns, a register
/// zero-test branch and an indirect jump through a table.
const char *const KitchenSink = R"(
.entry main
double:                 ; f(x) = 2x
  add r1, r1, r1
  ret
triple:                 ; f(x) = 3x
  mov r2, r1
  add r1, r1, r1
  add r1, r1, r2
  ret
main:
  movi r10, 5           ; loop counter
  movi r11, 0           ; accumulator
loop:
  mov r1, r10
  call double
  add r11, r11, r1
  movi r3, table
  andi r4, r10, 1       ; pick an entry by parity
  shli r4, r4, 3
  add r3, r3, r4
  ld r5, [r3]
  mov r1, r10
  callr r5
  add r11, r11, r1
  addi r10, r10, -1
  jnzr r10, loop
  out r11
  cmpi r11, 100
  jcc gt, big
  movi r12, 1
  jmp finish
big:
  movi r12, 2
finish:
  out r12
  movi r6, done
  jmpr r6
  brk 1                 ; unreachable
done:
  halt
.data
table: .word double, triple
)";

} // namespace

TEST(DbtTest, TranslatesAndMatchesNativeOutput) {
  AsmProgram Program = assembleOk(KitchenSink);
  auto [NativeOut, NativeStop] = runNative(Program);
  ASSERT_EQ(NativeStop.Kind, StopKind::Halted);

  DbtRun Run(Program, DbtConfig{});
  ASSERT_TRUE(Run.Loaded);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Run.Interp.output(), NativeOut);
  EXPECT_GT(Run.Translator.translationCount(), 5u);
}

TEST(DbtTest, AllTechniquesPreserveSemantics) {
  AsmProgram Program = assembleOk(KitchenSink);
  auto [NativeOut, NativeStop] = runNative(Program);
  ASSERT_EQ(NativeStop.Kind, StopKind::Halted);

  for (Technique Tech : {Technique::None, Technique::Ecf, Technique::EdgCf,
                         Technique::Rcf}) {
    for (UpdateFlavor Flavor : {UpdateFlavor::Jcc, UpdateFlavor::CMovcc}) {
      DbtConfig Config;
      Config.Tech = Tech;
      Config.Flavor = Flavor;
      DbtRun Run(Program, Config);
      ASSERT_TRUE(Run.Loaded);
      EXPECT_EQ(Run.Stop.Kind, StopKind::Halted)
          << getTechniqueName(Tech) << "/" << getUpdateFlavorName(Flavor)
          << " trap=" << getTrapKindName(Run.Stop.Trap)
          << " code=" << Run.Stop.BreakCode;
      EXPECT_EQ(Run.Interp.output(), NativeOut)
          << getTechniqueName(Tech) << "/" << getUpdateFlavorName(Flavor);
    }
  }
}

TEST(DbtTest, AllPoliciesPreserveSemantics) {
  AsmProgram Program = assembleOk(KitchenSink);
  auto [NativeOut, NativeStop] = runNative(Program);

  for (CheckPolicy Policy : {CheckPolicy::AllBB, CheckPolicy::RetBE,
                             CheckPolicy::Ret, CheckPolicy::End,
                             CheckPolicy::StoreBB}) {
    DbtConfig Config;
    Config.Tech = Technique::Rcf;
    Config.Policy = Policy;
    DbtRun Run(Program, Config);
    ASSERT_TRUE(Run.Loaded);
    EXPECT_EQ(Run.Stop.Kind, StopKind::Halted)
        << getCheckPolicyName(Policy);
    EXPECT_EQ(Run.Interp.output(), NativeOut) << getCheckPolicyName(Policy);
  }
}

TEST(DbtTest, RelaxedPoliciesReduceCycles) {
  AsmProgram Program = assembleOk(KitchenSink);
  std::vector<uint64_t> Cycles;
  for (CheckPolicy Policy : {CheckPolicy::AllBB, CheckPolicy::RetBE,
                             CheckPolicy::Ret, CheckPolicy::End}) {
    DbtConfig Config;
    Config.Tech = Technique::Rcf;
    Config.Policy = Policy;
    DbtRun Run(Program, Config);
    Cycles.push_back(Run.Interp.cycleCount());
  }
  EXPECT_GE(Cycles[0], Cycles[1]); // ALLBB >= RET-BE
  EXPECT_GE(Cycles[1], Cycles[2]); // RET-BE >= RET
  EXPECT_GE(Cycles[2], Cycles[3]); // RET >= END
  EXPECT_GT(Cycles[0], Cycles[3]); // Strictly cheaper overall.
}

TEST(DbtTest, InstrumentationCostOrdering) {
  // RCF inserts the most work, ECF the least (Section 6).
  AsmProgram Program = assembleOk(KitchenSink);
  auto CyclesFor = [&](Technique Tech) {
    DbtConfig Config;
    Config.Tech = Tech;
    DbtRun Run(Program, Config);
    return Run.Interp.cycleCount();
  };
  uint64_t None = CyclesFor(Technique::None);
  uint64_t Ecf = CyclesFor(Technique::Ecf);
  uint64_t EdgCf = CyclesFor(Technique::EdgCf);
  uint64_t Rcf = CyclesFor(Technique::Rcf);
  // ECF and EdgCF are within a few percent of each other on any single
  // program (the suite-level geomean ordering ECF < EdgCF < RCF is
  // asserted in WorkloadsTest.SuiteSlowdownOrdering); RCF is always the
  // most expensive.
  EXPECT_LT(None, Ecf);
  EXPECT_LT(None, EdgCf);
  EXPECT_LT(Ecf, EdgCf + EdgCf / 20);
  EXPECT_LE(EdgCf, Rcf);
  EXPECT_LE(Ecf, Rcf);
}

TEST(DbtTest, CmovFlavorCostsMore) {
  AsmProgram Program = assembleOk(KitchenSink);
  auto CyclesFor = [&](UpdateFlavor Flavor) {
    DbtConfig Config;
    Config.Tech = Technique::EdgCf;
    Config.Flavor = Flavor;
    DbtRun Run(Program, Config);
    return Run.Interp.cycleCount();
  };
  EXPECT_LT(CyclesFor(UpdateFlavor::Jcc), CyclesFor(UpdateFlavor::CMovcc));
}

TEST(DbtTest, ChainingReducesDispatches) {
  AsmProgram Program = assembleOk(KitchenSink);
  DbtConfig Chained;
  DbtRun A(Program, Chained);
  DbtConfig Unchained;
  Unchained.ChainDirectExits = false;
  DbtRun B(Program, Unchained);
  EXPECT_EQ(A.Interp.output(), B.Interp.output());
  EXPECT_LT(A.Translator.dispatchCount(), B.Translator.dispatchCount());
  EXPECT_LT(A.Interp.cycleCount(), B.Interp.cycleCount());
}

TEST(DbtTest, EagerModeMatchesOnDemand) {
  AsmProgram Program = assembleOk(KitchenSink);
  auto [NativeOut, NativeStop] = runNative(Program);
  DbtConfig Config;
  Config.EagerTranslate = true;
  Config.Tech = Technique::EdgCf;
  DbtRun Run(Program, Config);
  ASSERT_TRUE(Run.Loaded);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Run.Interp.output(), NativeOut);
}

TEST(DbtTest, CfcssRequiresEagerMode) {
  AsmProgram Program = assembleOk("movi r1, 1\nout r1\nhalt\n");
  DbtConfig Config;
  Config.Tech = Technique::Cfcss;
  DbtRun OnDemand(Program, Config);
  EXPECT_FALSE(OnDemand.Loaded); // The paper's Section 5 limitation.
}

TEST(DbtTest, CfcssAndEccaRunEagerly) {
  // No indirect calls/jumps: the static CFG techniques can prepare.
  AsmProgram Program = assembleOk(R"(
.entry main
inc:
  addi r1, r1, 1
  ret
main:
  movi r1, 0
  movi r10, 4
loop:
  call inc
  addi r10, r10, -1
  cmpi r10, 0
  jcc ne, loop
  out r1
  halt
)");
  auto [NativeOut, NativeStop] = runNative(Program);
  ASSERT_EQ(NativeStop.Kind, StopKind::Halted);
  for (Technique Tech : {Technique::Cfcss, Technique::Ecca}) {
    DbtConfig Config;
    Config.Tech = Tech;
    Config.EagerTranslate = true;
    DbtRun Run(Program, Config);
    ASSERT_TRUE(Run.Loaded) << getTechniqueName(Tech);
    EXPECT_EQ(Run.Stop.Kind, StopKind::Halted)
        << getTechniqueName(Tech)
        << " trap=" << getTrapKindName(Run.Stop.Trap);
    EXPECT_EQ(Run.Interp.output(), NativeOut) << getTechniqueName(Tech);
  }
}

TEST(DbtTest, CfcssRejectsIndirectCalls) {
  AsmProgram Program = assembleOk(KitchenSink);
  DbtConfig Config;
  Config.Tech = Technique::Cfcss;
  Config.EagerTranslate = true;
  DbtRun Run(Program, Config);
  EXPECT_FALSE(Run.Loaded);
}

TEST(DbtTest, SuperblocksPreserveSemantics) {
  AsmProgram Program = assembleOk(KitchenSink);
  auto [NativeOut, NativeStop] = runNative(Program);
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  Config.SuperblockLimit = 8;
  DbtRun Run(Program, Config);
  ASSERT_TRUE(Run.Loaded);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Run.Interp.output(), NativeOut);
}

TEST(DbtTest, FoldingReducesCyclesAndPreservesSemantics) {
  // An unconditional-jump chain of tiny blocks is where superblock
  // formation plus update folding pays.
  AsmProgram Program = assembleOk(R"(
main:
  movi r1, 0
  jmp a
a: addi r1, r1, 1
   jmp b
b: addi r1, r1, 2
   jmp c
c: addi r1, r1, 3
   jmp d
d: addi r1, r1, 4
  out r1
  halt
)");
  auto [NativeOut, NativeStop] = runNative(Program);
  DbtConfig Plain;
  Plain.Tech = Technique::EdgCf;
  Plain.SuperblockLimit = 8;
  DbtRun A(Program, Plain);
  DbtConfig Folded = Plain;
  Folded.FoldSignatureUpdates = true;
  Folded.Policy = CheckPolicy::End; // No checks between updates to fold.
  DbtRun B(Program, Folded);
  ASSERT_TRUE(A.Loaded);
  ASSERT_TRUE(B.Loaded);
  EXPECT_EQ(A.Interp.output(), NativeOut);
  EXPECT_EQ(B.Interp.output(), NativeOut);
  EXPECT_GT(B.Translator.foldedUpdateCount(), 0u);
  EXPECT_LT(B.Interp.cycleCount(), A.Interp.cycleCount());
}

TEST(DbtTest, SelfModifyingCodeIsRetranslated) {
  // The program rewrites the Imm field of a movi, then re-executes it.
  // Under the DBT this triggers the write-protection fault, a flush and
  // a retranslation (Section 5).
  AsmProgram Program = assembleOk(R"(
.entry main
main:
  movi r1, patch        ; address of the movi below
  movi r2, 99
  stb [r1+4], r2        ; rewrite the low immediate byte
  jmp cont
cont:
patch:
  movi r3, 7            ; becomes movi r3, 99
  out r3
  halt
)");
  // Natively the store traps: code pages are never writable.
  auto [NativeOut, NativeStop] = runNative(Program);
  (void)NativeOut;
  EXPECT_EQ(NativeStop.Kind, StopKind::Trapped);

  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  DbtRun Run(Program, Config);
  ASSERT_TRUE(Run.Loaded);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted)
      << getTrapKindName(Run.Stop.Trap);
  EXPECT_EQ(Run.Interp.output(), "99\n");
  EXPECT_EQ(Run.Translator.flushCount(), 1u);
}

TEST(DbtTest, WildJumpOutOfCacheTraps) {
  // Category F end to end: jump to a data address under the DBT.
  AsmProgram Program = assembleOk(R"(
.data
d: .word 1
.code
main:
  movi r1, d
  jmpr r1
  halt
)");
  DbtRun Run(Program, DbtConfig{});
  ASSERT_TRUE(Run.Loaded);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(Run.Stop.Trap, TrapKind::ExecViolation);
}

TEST(DbtTest, GuestCodePagesNotExecutableUnderDbt) {
  // A jump to a raw (untranslatable, misaligned) guest code address must
  // trap: only the code cache is executable while translated code runs.
  // (An aligned target would simply be translated by the dispatcher.)
  AsmProgram Program = assembleOk(R"(
main:
  movi r1, 0x10004      ; mid-instruction guest code address
  jmpr r1
  halt
)");
  DbtRun Run(Program, DbtConfig{});
  ASSERT_TRUE(Run.Loaded);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(Run.Stop.Trap, TrapKind::ExecViolation);
}

TEST(DbtTest, BranchSiteEnumeration) {
  AsmProgram Program = assembleOk(KitchenSink);
  DbtConfig Config;
  Config.Tech = Technique::Rcf;
  DbtRun Run(Program, Config);
  ASSERT_TRUE(Run.Loaded);
  auto Sites = Run.Translator.enumerateBranchSites();
  ASSERT_FALSE(Sites.empty());
  bool SawInstr = false, SawOriginal = false;
  for (const BranchSiteInfo &Site : Sites) {
    if (Site.IsInstrumentation)
      SawInstr = true;
    else
      SawOriginal = true;
  }
  EXPECT_TRUE(SawInstr);   // RCF check/update branches.
  EXPECT_TRUE(SawOriginal); // Translated guest branches + chained jumps.
}

TEST(DbtTest, NoInstrumentationSitesWithoutChecker) {
  AsmProgram Program = assembleOk(KitchenSink);
  DbtRun Run(Program, DbtConfig{});
  for (const BranchSiteInfo &Site : Run.Translator.enumerateBranchSites())
    EXPECT_FALSE(Site.IsInstrumentation);
}

TEST(DbtTest, IbtcServesRepeatedIndirectBranches) {
  // A loop calling through a function-pointer table: every ret and every
  // callr is a TrampR exit. After the first dispatch per target, the
  // indirect-branch translation cache must answer.
  AsmProgram Program = assembleOk(R"(
.data
table: .word f
.code
main:
  movi r5, 20
loop:
  movi r1, table
  ld r2, [r1+0]
  callr r2
  addi r3, r3, 1
  addi r5, r5, -1
  jnzr r5, loop
  out r3
  halt
f:
  ret
)");
  DbtRun Run(Program, DbtConfig{});
  ASSERT_TRUE(Run.Loaded);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(Run.Interp.output(), "20\n");
  // 20 callr + 20 ret dispatches; only the first of each target misses.
  EXPECT_GT(Run.Translator.ibtcHitCount(), 30u);
  EXPECT_LT(Run.Translator.ibtcMissCount(), 10u);
  // Every IBTC consultation is one TrampR dispatch; direct Tramp
  // dispatches account for the rest.
  EXPECT_LE(Run.Translator.ibtcHitCount() + Run.Translator.ibtcMissCount(),
            Run.Translator.dispatchCount());
}

TEST(DbtTest, FlushClearsIbtcAndPredecode) {
  // Self-modifying code between indirect branches: the flush must drop
  // both the IBTC (stale cache addresses) and the predecoded pages of
  // the code cache, and the rerun must still produce the right output.
  AsmProgram Program = assembleOk(R"(
.entry main
main:
  movi r6, helper
  callr r6              ; warm the IBTC
  movi r1, patch
  movi r2, 99
  stb [r1+4], r2        ; rewrite the low immediate byte -> flush
  movi r6, helper
  callr r6              ; indirect again, after the flush
patch:
  movi r3, 7            ; becomes movi r3, 99
  out r3
  halt
helper:
  ret
)");
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  DbtRun Run(Program, Config);
  ASSERT_TRUE(Run.Loaded);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted)
      << getTrapKindName(Run.Stop.Trap);
  EXPECT_EQ(Run.Interp.output(), "99\n");
  EXPECT_EQ(Run.Translator.flushCount(), 1u);
  // The post-flush callr re-translated rather than jumping to a stale
  // cache address: dispatches resumed and the run produced golden output.
  EXPECT_GT(Run.Translator.ibtcMissCount(), 0u);
}

TEST(DbtTest, SelfModifyingCodeUnderEagerTranslationDegradesToOnDemand) {
  // Eager mode froze the translation set from the static CFG; a store
  // into guest code invalidates that CFG. The write-violation handler
  // must drop to on-demand translation (legal for EdgCF, which needs no
  // whole-program CFG), flush, and let the store retry.
  AsmProgram Program = assembleOk(R"(
.entry main
main:
  movi r1, patch        ; address of the movi below
  movi r2, 99
  stb [r1+4], r2        ; rewrite the low immediate byte
  jmp cont
cont:
patch:
  movi r3, 7            ; becomes movi r3, 99
  out r3
  halt
)");
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  Config.EagerTranslate = true;
  DbtRun Run(Program, Config);
  ASSERT_TRUE(Run.Loaded) << Run.Translator.loadError();
  EXPECT_EQ(Run.Stop.Kind, StopKind::Halted)
      << getTrapKindName(Run.Stop.Trap);
  EXPECT_EQ(Run.Interp.output(), "99\n");
  EXPECT_EQ(Run.Translator.flushCount(), 1u);
  EXPECT_FALSE(Run.Translator.config().EagerTranslate);
}

TEST(DbtTest, JumpOneBytePastLastCodePageTraps) {
  // An errant target one byte past the last mapped code page: the
  // dispatcher refuses to translate it (outside the code segment and
  // misaligned), control lands on unmapped memory and the fetch raises
  // the category-F ExecViolation with the exact faulting address.
  AsmProgram Program = assembleOk(R"(
main:
  movi r1, 0
  halt
)");
  uint64_t CodePages =
      (Program.Code.size() + PageSize - 1) / PageSize * PageSize;
  uint64_t Target = CodeBase + CodePages + 1;
  AsmProgram Jumper = assembleOk(
      "main:\n  movi r1, " + std::to_string(Target) + "\n  jmpr r1\n  halt\n");
  DbtRun Run(Jumper, DbtConfig{});
  ASSERT_TRUE(Run.Loaded);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(Run.Stop.Trap, TrapKind::ExecViolation);
  EXPECT_EQ(Run.Stop.TrapAddr, Target);
}

TEST(DbtTest, JumpPastCodeEndInsideMappedPageTraps) {
  // The last code page is mapped beyond the program's final instruction
  // (page-granular mapping). A target past the code end but inside that
  // page must still trap: guest pages carry no execute permission.
  AsmProgram Program = assembleOk(R"(
main:
  movi r1, end
  addi r1, r1, 8        ; one instruction past the last one
  jmpr r1
end:
  halt
)");
  uint64_t Target = CodeBase + Program.Code.size();
  DbtRun Run(Program, DbtConfig{});
  ASSERT_TRUE(Run.Loaded);
  EXPECT_EQ(Run.Stop.Kind, StopKind::Trapped);
  EXPECT_EQ(Run.Stop.Trap, TrapKind::ExecViolation);
  EXPECT_EQ(Run.Stop.TrapAddr, Target);
}

TEST(DbtTest, DegradeAfterFlushRetranslatesAndCompletes) {
  // degradeToConservative mid-run: the next dispatch retranslates with
  // AllBB checks and no chaining, and the program still completes with
  // identical output.
  AsmProgram Program = assembleOk(KitchenSink);
  auto [NativeOut, NativeStop] = runNative(Program);
  ASSERT_EQ(NativeStop.Kind, StopKind::Halted);

  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  Config.Policy = CheckPolicy::End;
  Config.SuperblockLimit = 4;
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  StopInfo Stop = Translator.run(Interp, 40); // Part-way in.
  ASSERT_EQ(Stop.Kind, StopKind::InsnLimit);

  Translator.degradeToConservative();
  // The flush unchained every patched exit, so the interrupted stale
  // block re-dispatches on its next exit and control flows into freshly
  // translated conservative code mid-run.
  Stop = Translator.run(Interp, 2000000);
  EXPECT_EQ(Stop.Kind, StopKind::Halted) << getTrapKindName(Stop.Trap);
  EXPECT_EQ(Interp.output(), NativeOut);
}

TEST(DbtTest, RegistryCountersMatchRunBehavior) {
  // A caller-supplied registry receives the DBT's counters under their
  // well-known names, agreeing with the accessors and with an attached
  // tracer's event stream.
  AsmProgram Program = assembleOk(KitchenSink);
  telemetry::MetricsRegistry Registry;
  telemetry::EventTracer Tracer(1024);
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, DbtConfig{}, &Registry);
  Translator.setTracer(&Tracer);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  StopInfo Stop = Translator.run(Interp, 2000000);
  ASSERT_EQ(Stop.Kind, StopKind::Halted) << getTrapKindName(Stop.Trap);

  telemetry::RegistrySnapshot Snap = Registry.snapshot();
  EXPECT_GT(Snap.counterOr("dbt.translations"), 0u);
  EXPECT_EQ(Snap.counterOr("dbt.translations"),
            Translator.translationCount());
  EXPECT_EQ(Snap.counterOr("dbt.dispatches"), Translator.dispatchCount());
  EXPECT_GT(Snap.counterOr("dbt.chains"), 0u);
  EXPECT_EQ(Snap.counterOr("dbt.chains"), Translator.chainCount());
  EXPECT_EQ(Snap.counterOr("dbt.flushes"), 0u);

  // The tracer saw exactly one block-translated event per translation
  // and one block-chained event per patched exit.
  uint64_t Translated = 0, Chained = 0;
  for (const telemetry::TraceEvent &E : Tracer.events()) {
    if (E.Kind == telemetry::TraceEventKind::BlockTranslated)
      ++Translated;
    if (E.Kind == telemetry::TraceEventKind::BlockChained)
      ++Chained;
  }
  EXPECT_EQ(Translated, Translator.translationCount());
  EXPECT_EQ(Chained, Translator.chainCount());
}

TEST(DbtTest, RegistryCountsFlushes) {
  // Same self-modifying program as FlushClearsIbtcAndPredecode: the one
  // SMC flush must show up as dbt.flushes == 1 in the shared registry.
  AsmProgram Program = assembleOk(R"(
.entry main
main:
  movi r6, helper
  callr r6
  movi r1, patch
  movi r2, 99
  stb [r1+4], r2
  movi r6, helper
  callr r6
patch:
  movi r3, 7
  out r3
  halt
helper:
  ret
)");
  telemetry::MetricsRegistry Registry;
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, DbtConfig{}, &Registry);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  StopInfo Stop = Translator.run(Interp, 2000000);
  ASSERT_EQ(Stop.Kind, StopKind::Halted) << getTrapKindName(Stop.Trap);
  ASSERT_EQ(Interp.output(), "99\n");

  telemetry::RegistrySnapshot Snap = Registry.snapshot();
  EXPECT_EQ(Snap.counterOr("dbt.flushes"), 1u);
  EXPECT_EQ(Snap.counterOr("dbt.ibtc_misses"), Translator.ibtcMissCount());
  EXPECT_GT(Snap.counterOr("dbt.ibtc_misses"), 0u);
}

namespace {

/// Flips one bit of a signature register at the Nth executed
/// instruction (the SigState leg of the checker-targeted fault model).
struct FlipSigRegAt : PreInsnHook {
  uint64_t At;
  uint8_t Reg;
  uint64_t Count = 0;
  bool Fired = false;

  FlipSigRegAt(uint64_t At, uint8_t Reg) : At(At), Reg(Reg) {}

  void onInsn(uint64_t, const Instruction &, CpuState &State) override {
    if (!Fired && ++Count == At) {
      State.Regs[Reg] ^= 1ull << 3;
      Fired = true;
    }
  }
};

} // namespace

TEST(DbtTest, IntegrityQuarantineRetranslateRechain) {
  // Corrupt one translated block between two runs sharing the
  // translator: the scrubber must quarantine the unit (unchaining its
  // predecessors), eagerly retranslate it, and the second run must
  // re-chain through dispatch and still produce the native output.
  AsmProgram Program = assembleOk(KitchenSink);
  auto [NativeOut, NativeStop] = runNative(Program);
  ASSERT_EQ(NativeStop.Kind, StopKind::Halted);

  DbtConfig Config;
  Config.ScrubInterval = 64;
  Config.VerifyDispatchInterval = 4;
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  ASSERT_TRUE(Translator.load(Program, Interp.state()));
  StopInfo Stop = Translator.run(Interp, 2000000);
  ASSERT_EQ(Stop.Kind, StopKind::Halted) << getTrapKindName(Stop.Trap);
  ASSERT_EQ(Interp.output(), NativeOut);
  ASSERT_GT(Translator.chainCount(), 0u);

  ASSERT_FALSE(Translator.blocks().empty());
  const TranslatedBlock &Victim = *Translator.blocks().begin();
  uint64_t Guest = Victim.GuestAddr;
  uint64_t Addr = Victim.CacheAddr + Victim.CacheSize / 2;
  uint8_t Byte;
  Mem.readRaw(Addr, &Byte, 1);
  Byte ^= 0x04;
  Mem.writeRaw(Addr, &Byte, 1);

  EXPECT_GE(Translator.scrubCodeCache(), 1u);
  EXPECT_GT(Translator.integrityMismatchCount(), 0u);
  EXPECT_GT(Translator.integrityRetranslationCount(), 0u);
  EXPECT_TRUE(Translator.verifyGuestBlock(Guest));

  // Unchained predecessor exits fall back to Tramp dispatch; the re-run
  // re-chains them and the whole cache still verifies clean.
  uint64_t ChainsBefore = Translator.chainCount();
  Interpreter Rerun(Mem);
  ASSERT_TRUE(Translator.load(Program, Rerun.state()));
  Stop = Translator.run(Rerun, 2000000);
  ASSERT_EQ(Stop.Kind, StopKind::Halted) << getTrapKindName(Stop.Trap);
  EXPECT_EQ(Rerun.output(), NativeOut);
  EXPECT_GE(Translator.chainCount(), ChainsBefore);
  EXPECT_EQ(Translator.scrubCodeCache(), 0u);
}

TEST(DbtTest, ShadowSigDivergenceIsMonitorCorruptionNotCfe) {
  // With shadow signatures on, a flipped live signature register is a
  // *monitor* fault: the cross-check at the next CHECK_SIG site raises
  // 0x5EC before the technique's own check can misreport it as a guest
  // control-flow error. Flips after the last check site may be
  // overwritten (masked) — but no flip may surface as 0xCFE.
  AsmProgram Program = assembleOk(KitchenSink);
  auto [NativeOut, NativeStop] = runNative(Program);
  ASSERT_EQ(NativeStop.Kind, StopKind::Halted);

  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  Config.Flavor = UpdateFlavor::CMovcc;
  Config.ShadowSignature = true;
  unsigned Trapped5ec = 0, Masked = 0;
  for (uint64_t At : {20, 40, 60, 80, 100, 140}) {
    for (uint8_t Reg : {RegPCP, RegRTS, RegPCPShadow, RegRTSShadow}) {
      Memory Mem;
      Interpreter Interp(Mem);
      Dbt Translator(Mem, Config);
      ASSERT_TRUE(Translator.load(Program, Interp.state()));
      FlipSigRegAt Hook(At, Reg);
      Interp.setPreInsnHook(&Hook);
      StopInfo Stop = Translator.run(Interp, 2000000);
      if (Stop.Kind == StopKind::Halted) {
        EXPECT_EQ(Interp.output(), NativeOut);
        ++Masked;
        continue;
      }
      ASSERT_EQ(Stop.Kind, StopKind::Trapped);
      ASSERT_EQ(Stop.Trap, TrapKind::BreakTrap);
      EXPECT_NE(Stop.BreakCode, BrkControlFlowError)
          << "shadow divergence misclassified as guest CFE (flip at "
          << At << ", r" << unsigned(Reg) << ")";
      EXPECT_EQ(Stop.BreakCode, BrkMonitorCorruption);
      ++Trapped5ec;
    }
  }
  // The sweep is not vacuous: some flips land between check sites.
  EXPECT_GT(Trapped5ec, 0u);
}
