//===- coverage_matrix.cpp - Empirical error-coverage matrix --------------------===//
//
// The paper argues the techniques' per-category coverage analytically
// (Sections 2-3) and leaves injection to future work; this bench runs
// that future work. Two experiments:
//
//  1. Coverage by branch-error category per technique: deterministic
//     single-bit fault-injection campaigns on small programs, bucketing
//     outcomes per category. Expected shape: CFCSS and ECCA miss
//     category A, ECF misses C, EdgCF and RCF cover A-E; F is caught by
//     the memory-protection hardware for everyone.
//
//  2. Faults on the *instrumentation-inserted* branches (Section 3.2's
//     motivation for RCF): with Jcc-flavor updates, EdgCF's own check
//     branches are unprotected fault sites while RCF's regions cover
//     them.
//
//  3. Recovery effectiveness: the same campaigns re-run under the
//     checkpoint/rollback recovery manager. Detection turns into
//     survival — the per-category fraction of injected faults that roll
//     back and finish with the golden output — with before/after
//     campaign wall-clock timings for the recovery overhead.
//
//  4. Checker-targeted campaign: single-bit faults on the monitor
//     itself — translated code bytes, dispatch metadata (BlockTable
//     and IBTC entries), and live signature registers — under the full
//     self-integrity configuration (unchained dispatch, per-dispatch
//     verification, scrubbing, shadow signatures). The acceptance
//     shape is zero SDC: every checker fault is detected, healed, or
//     provably masked.
//
//  5. Adaptive-policy tier comparison: the same original-site campaigns
//     under the base tier (ALLBB everywhere) versus the optimizing
//     trace tier (hot regions relax to RET-BE, updates fold along the
//     trace spine). The acceptance shape is zero SDC regression: check
//     sinking delays detection but every discrepancy still reaches a
//     checking block (updates run in every block under every policy).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "fault/Campaign.h"
#include "fault/IntegrityFault.h"
#include "recovery/Recovery.h"
#include "support/Format.h"
#include "support/Table.h"
#include "support/ThreadPool.h"
#include "workloads/RandomProgram.h"

#include <algorithm>
#include <cstdio>

using namespace cfed;
using cfed::bench::parseJobs;
using cfed::bench::PerfReport;

namespace {

constexpr uint64_t PrepBudget = 50000000ULL;

std::vector<AsmProgram> campaignPrograms() {
  // Small, branchy, call-heavy programs: campaigns re-run the program
  // once per injection, so the suite workloads would be too slow here.
  std::vector<AsmProgram> Programs;
  for (uint64_t Seed : {11, 22, 33, 44}) {
    RandomProgramOptions Options;
    Options.Seed = Seed;
    Options.NumSegments = 8;
    Options.LoopTrip = 16;
    AsmResult Result = assembleProgram(generateRandomProgram(Options));
    if (!Result.succeeded())
      return {};
    Programs.push_back(std::move(Result.Program));
  }
  return Programs;
}

struct TechSpec {
  Technique Tech;
  UpdateFlavor Flavor;
  bool Eager;
  DbtTier Tier = DbtTier::Base;
};

/// A fault whose flipped target is misaligned: real branch targets are
/// 8-aligned, so flipping offset bits 0-2 always lands mid-instruction
/// and decodes a garbage stream — behavior outside the paper's
/// Assumption 1 (instruction-granularity landings). The aligned-only
/// experiments exclude these.
bool isMisalignedFault(const PlannedFault &Fault) {
  return Fault.Kind == FaultKind::AddrBit && Fault.Bit < 3;
}

/// One technique's campaign tallies plus the detection latency (insns
/// from fault firing to the detecting check) of every signature- or
/// hardware-detected run, in injection order.
struct TechResult {
  CampaignResult Result;
  std::vector<uint64_t> Latencies;
};

TechResult runTech(const std::vector<AsmProgram> &Programs,
                   const TechSpec &Spec, SiteClass Sites,
                   uint64_t InjectionsPerProgram, bool AlignedOnly,
                   ThreadPool &Pool) {
  TechResult Total;
  for (size_t PI = 0; PI < Programs.size(); ++PI) {
    DbtConfig Config;
    Config.Tech = Spec.Tech;
    Config.Flavor = Spec.Flavor;
    Config.EagerTranslate = Spec.Eager;
    Config.Tier = Spec.Tier;
    FaultCampaign Campaign(Programs[PI], Config);
    if (!Campaign.prepare(PrepBudget))
      continue;
    std::vector<PlannedFault> Candidates =
        Campaign.plan(InjectionsPerProgram * 5, 1000 + PI * 37, Sites);

    // Serial selection, parallel injection, in-order merge: the tallies
    // are identical for any job count.
    std::vector<const PlannedFault *> Selected;
    for (const PlannedFault &Fault : Candidates) {
      if (Fault.Category == BranchErrorCategory::NoError)
        continue;
      if (AlignedOnly && isMisalignedFault(Fault))
        continue;
      if (Selected.size() >= InjectionsPerProgram)
        break;
      Selected.push_back(&Fault);
    }
    std::vector<InjectionReport> Reports(Selected.size());
    Pool.parallelFor(Selected.size(), [&](uint64_t I) {
      Reports[I] = Campaign.injectDetailed(*Selected[I]);
    });
    for (size_t I = 0; I < Selected.size(); ++I) {
      Total.Result.of(Selected[I]->Category).add(Reports[I].Result);
      ++Total.Result.Injections;
      if (Reports[I].Fired &&
          (Reports[I].Result == Outcome::DetectedSignature ||
           Reports[I].Result == Outcome::DetectedHardware))
        Total.Latencies.push_back(Reports[I].LatencyInsns);
    }
  }
  return Total;
}

double latencyMean(const std::vector<uint64_t> &Latencies) {
  if (Latencies.empty())
    return 0.0;
  double Sum = 0;
  for (uint64_t L : Latencies)
    Sum += double(L);
  return Sum / double(Latencies.size());
}

uint64_t latencyPercentile(std::vector<uint64_t> Latencies, double Q) {
  if (Latencies.empty())
    return 0;
  std::sort(Latencies.begin(), Latencies.end());
  size_t Rank = size_t(Q * double(Latencies.size() - 1) + 0.5);
  return Latencies[std::min(Rank, Latencies.size() - 1)];
}

std::string cell(const OutcomeCounts &Counts) {
  if (Counts.total() == 0)
    return "-";
  double Rate = double(Counts.DetectedSig) / double(Counts.total());
  return formatString("%3.0f%% (%llu)", Rate * 100.0,
                      (unsigned long long)Counts.total());
}

/// Survival cell: faults that rolled back and finished with the golden
/// output, plus those the run masked outright.
std::string survivalCell(const OutcomeCounts &Counts) {
  if (Counts.total() == 0)
    return "-";
  double Rate = double(Counts.Recovered + Counts.Masked) /
                double(Counts.total());
  return formatString("%3.0f%% (%llu)", Rate * 100.0,
                      (unsigned long long)Counts.total());
}

void mergeInto(CampaignResult &Total, const CampaignResult &Part) {
  for (unsigned Cat = 0; Cat < NumBranchErrorCategories; ++Cat)
    Total.PerCategory[Cat].merge(Part.PerCategory[Cat]);
  Total.Injections += Part.Injections;
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = parseJobs(argc, argv);
  ThreadPool Pool(Jobs);
  PerfReport Report("coverage_matrix");
  Report.set("jobs", Jobs);
  std::printf("=== Coverage matrix: signature-detection rate per "
              "branch-error category ===\n(percentage of injected "
              "errors reported by the technique's check; sample size in "
              "parentheses; %u injection jobs)\n\n",
              Jobs);
  std::vector<AsmProgram> Programs = campaignPrograms();
  if (Programs.empty()) {
    std::printf("failed to generate campaign programs\n");
    return 1;
  }

  const TechSpec Specs[] = {
      {Technique::None, UpdateFlavor::Jcc, false},
      {Technique::Cfcss, UpdateFlavor::Jcc, true},
      {Technique::Ecca, UpdateFlavor::Jcc, true},
      {Technique::Ecf, UpdateFlavor::CMovcc, false},
      {Technique::EdgCf, UpdateFlavor::CMovcc, false},
      {Technique::Rcf, UpdateFlavor::CMovcc, false},
  };

  auto PrintMatrix = [&](bool AlignedOnly, uint64_t PerProgram) {
    Table T;
    T.setHeader({"Technique", "A", "B", "C", "D", "E", "F", "SDC",
                 "timeout", "lat mean", "lat p90"});
    for (const TechSpec &Spec : Specs) {
      TechResult TR = runTech(Programs, Spec, SiteClass::OriginalOnly,
                              PerProgram, AlignedOnly, Pool);
      const CampaignResult &R = TR.Result;
      OutcomeCounts Totals = R.totals();
      T.addRow({getTechniqueName(Spec.Tech),
                cell(R.of(BranchErrorCategory::A)),
                cell(R.of(BranchErrorCategory::B)),
                cell(R.of(BranchErrorCategory::C)),
                cell(R.of(BranchErrorCategory::D)),
                cell(R.of(BranchErrorCategory::E)),
                cell(R.of(BranchErrorCategory::F)),
                formatString("%llu", (unsigned long long)Totals.Sdc),
                formatString("%llu", (unsigned long long)Totals.Timeout),
                TR.Latencies.empty()
                    ? std::string("-")
                    : formatString("%.0f", latencyMean(TR.Latencies)),
                TR.Latencies.empty()
                    ? std::string("-")
                    : formatString("%llu", (unsigned long long)
                                       latencyPercentile(TR.Latencies,
                                                         0.9))});
      // The aligned model is the paper's Assumption 1 experiment; its
      // latency distribution is the one the relaxed checking policies
      // (Section 6) trade against, so it is the one BENCH_perf tracks.
      if (AlignedOnly && Spec.Tech != Technique::None) {
        std::string Prefix =
            formatString("lat_%s", getTechniqueName(Spec.Tech));
        Report.set(Prefix + "_detections",
                   (uint64_t)TR.Latencies.size());
        Report.set(Prefix + "_mean", latencyMean(TR.Latencies));
        Report.set(Prefix + "_p90",
                   latencyPercentile(TR.Latencies, 0.9));
      }
    }
    std::printf("%s\n", T.render().c_str());
  };

  std::printf("--- Full Section 2 model (all 36 fault bits; low offset "
              "bits land mid-instruction) ---\n");
  PrintMatrix(/*AlignedOnly=*/false, 90);
  std::printf("--- Aligned-target faults only (the Assumption 1 "
              "instruction-granularity model) ---\n");
  PrintMatrix(/*AlignedOnly=*/true, 90);
  std::printf("Expected shape: CFCSS/ECCA ~0%% on A; ECF 0%% on C; "
              "EdgCF/RCF high on A-E (aligned\nmodel); F is "
              "hardware-detected (0%% signature) for every technique.\n\n");

  std::printf("=== Faults on instrumentation-inserted branches "
              "(Jcc-flavor updates, aligned model) ===\n\n");
  Table T2;
  T2.setHeader({"Technique", "det-sig", "det-hw", "masked", "SDC",
                "timeout"});
  for (Technique Tech : {Technique::EdgCf, Technique::Rcf}) {
    TechSpec Spec{Tech, UpdateFlavor::Jcc, false};
    TechResult TR = runTech(Programs, Spec,
                            SiteClass::InstrumentationOnly, 90,
                            /*AlignedOnly=*/true, Pool);
    OutcomeCounts Totals = TR.Result.totals();
    auto Cell = [&](uint64_t Value) {
      return formatString("%llu", (unsigned long long)Value);
    };
    T2.addRow({getTechniqueName(Tech), Cell(Totals.DetectedSig),
               Cell(Totals.DetectedHw), Cell(Totals.Masked),
               Cell(Totals.Sdc), Cell(Totals.Timeout)});
  }
  std::printf("%s\n", T2.render().c_str());
  std::printf("Expected shape: RCF leaves fewer undetected outcomes "
              "(masked + SDC + timeout) than EdgCF\non its own inserted "
              "branches (Section 3.2: the region around the check "
              "branch).\n\n");

  std::printf("=== Adaptive check placement: base tier vs optimizing "
              "trace tier ===\n(same original-site fault sets; opt tier "
              "relaxes hot regions to RET-BE and folds\nupdates along "
              "trace spines; acceptance shape is zero SDC regression)\n\n");
  Table TAdapt;
  TAdapt.setHeader({"Technique", "tier", "det-sig", "det-hw", "masked",
                    "SDC", "timeout", "lat mean"});
  bool AdaptiveRegression = false;
  for (Technique Tech : {Technique::EdgCf, Technique::Rcf}) {
    uint64_t BaseSdc = 0;
    for (DbtTier Tier : {DbtTier::Base, DbtTier::Opt}) {
      TechSpec Spec{Tech, UpdateFlavor::CMovcc, false, Tier};
      TechResult TR = runTech(Programs, Spec, SiteClass::OriginalOnly,
                              90, /*AlignedOnly=*/true, Pool);
      OutcomeCounts Totals = TR.Result.totals();
      auto Cell = [&](uint64_t Value) {
        return formatString("%llu", (unsigned long long)Value);
      };
      TAdapt.addRow({getTechniqueName(Tech), getDbtTierName(Tier),
                     Cell(Totals.DetectedSig), Cell(Totals.DetectedHw),
                     Cell(Totals.Masked), Cell(Totals.Sdc),
                     Cell(Totals.Timeout),
                     formatString("%.0f", latencyMean(TR.Latencies))});
      Report.set(formatString("adaptive_%s_%s_sdc", getTechniqueName(Tech),
                              getDbtTierName(Tier)),
                 Totals.Sdc);
      Report.set(formatString("adaptive_%s_%s_lat_mean",
                              getTechniqueName(Tech), getDbtTierName(Tier)),
                 latencyMean(TR.Latencies));
      if (Tier == DbtTier::Base)
        BaseSdc = Totals.Sdc;
      else if (Totals.Sdc > BaseSdc)
        AdaptiveRegression = true;
    }
  }
  std::printf("%s\n", TAdapt.render().c_str());
  std::printf("Expected shape: identical or better SDC under the opt "
              "tier — updates are emitted\nin every block under every "
              "policy, so a wrong-signature state persists until the\n"
              "next checking block (back-edge or return) instead of "
              "escaping.\n\n");
  if (AdaptiveRegression) {
    std::printf("FAIL: the optimizing tier's adaptive check placement "
                "regressed SDC\n");
    return 1;
  }

  std::printf("=== Recovery effectiveness: survival per category under "
              "checkpoint/rollback ===\n(fraction of injected faults "
              "that finished with the golden output — rolled back\nand "
              "re-executed, or masked; same fault sets as a plain "
              "detection campaign)\n\n");
  RecoveryConfig Recovery;
  Recovery.CheckpointInterval = 2000;
  Table T3;
  T3.setHeader({"Technique", "A", "B", "C", "D", "E", "F", "rec-fail",
                "SDC", "detect s", "recover s"});
  for (Technique Tech : {Technique::EdgCf, Technique::Rcf}) {
    DbtConfig Config;
    Config.Tech = Tech;
    Config.Flavor = UpdateFlavor::CMovcc;
    CampaignResult Baseline, Survived;
    double DetectSecs = 0, RecoverSecs = 0;
    for (size_t PI = 0; PI < Programs.size(); ++PI) {
      FaultCampaign Campaign(Programs[PI], Config);
      if (!Campaign.prepare(PrepBudget))
        continue;
      uint64_t Seed = 2000 + PI * 37;
      auto DetectStart = std::chrono::steady_clock::now();
      mergeInto(Baseline,
                Campaign.run(90, Seed, SiteClass::OriginalOnly, Jobs));
      DetectSecs += secondsSince(DetectStart);
      auto RecoverStart = std::chrono::steady_clock::now();
      mergeInto(Survived, Campaign.runWithRecovery(
                              90, Seed, SiteClass::OriginalOnly, Recovery,
                              Jobs));
      RecoverSecs += secondsSince(RecoverStart);
    }
    OutcomeCounts Totals = Survived.totals();
    T3.addRow({getTechniqueName(Tech),
               survivalCell(Survived.of(BranchErrorCategory::A)),
               survivalCell(Survived.of(BranchErrorCategory::B)),
               survivalCell(Survived.of(BranchErrorCategory::C)),
               survivalCell(Survived.of(BranchErrorCategory::D)),
               survivalCell(Survived.of(BranchErrorCategory::E)),
               survivalCell(Survived.of(BranchErrorCategory::F)),
               formatString("%llu", (unsigned long long)Totals.RecoveryFailed),
               formatString("%llu", (unsigned long long)Totals.Sdc),
               formatString("%.2f", DetectSecs),
               formatString("%.2f", RecoverSecs)});
    uint64_t DetectedDE = Baseline.of(BranchErrorCategory::D).DetectedSig +
                          Baseline.of(BranchErrorCategory::E).DetectedSig;
    uint64_t RecoveredDE = Survived.of(BranchErrorCategory::D).Recovered +
                           Survived.of(BranchErrorCategory::E).Recovered;
    Report.set(formatString("%s_detected_de", getTechniqueName(Tech)),
               DetectedDE);
    Report.set(formatString("%s_recovered_de", getTechniqueName(Tech)),
               RecoveredDE);
    Report.set(formatString("%s_detect_secs", getTechniqueName(Tech)),
               DetectSecs);
    Report.set(formatString("%s_recover_secs", getTechniqueName(Tech)),
               RecoverSecs);
  }
  std::printf("%s\n", T3.render().c_str());
  std::printf("Expected shape: near-100%% survival on the categories the "
              "technique detects (D/E\nespecially); rec-fail counts "
              "runs whose re-execution still diverged; SDC faults\nwere "
              "never detected, so recovery cannot help them.\n\n");

  std::printf("=== Checker-targeted campaign: faults on the monitor "
              "itself ===\n(single-bit flips of translated code bytes, "
              "dispatch metadata and live signature\nstate under the full "
              "self-integrity configuration; acceptance shape is zero "
              "SDC)\n\n");
  DbtConfig IntegrityConfig;
  IntegrityConfig.Tech = Technique::EdgCf;
  IntegrityConfig.Flavor = UpdateFlavor::CMovcc;
  // Unchained dispatch + per-dispatch verification: every inter-unit
  // transfer re-validates the destination before corrupted bytes or
  // metadata can be followed. Shadow signatures cross-check the live
  // signature registers at every CHECK_SIG site.
  IntegrityConfig.ChainDirectExits = false;
  IntegrityConfig.VerifyDispatchInterval = 1;
  IntegrityConfig.ScrubInterval = 16;
  IntegrityConfig.ShadowSignature = true;
  IntegrityCampaignResult Checker;
  for (size_t PI = 0; PI < Programs.size(); ++PI) {
    IntegrityCampaignResult Part =
        runIntegrityCampaign(Programs[PI], IntegrityConfig,
                             /*PerTarget=*/40, 3000 + PI * 37, PrepBudget,
                             Jobs);
    for (IntegrityTarget Target : AllIntegrityTargets)
      Checker.of(Target).merge(Part.of(Target));
    Checker.Injections += Part.Injections;
  }
  Table T4;
  T4.setHeader({"Target", "det-sig", "det-hw", "recovered", "masked",
                "SDC", "timeout"});
  for (IntegrityTarget Target : AllIntegrityTargets) {
    const OutcomeCounts &Counts = Checker.of(Target);
    auto Cell = [&](uint64_t Value) {
      return formatString("%llu", (unsigned long long)Value);
    };
    T4.addRow({getIntegrityTargetName(Target), Cell(Counts.DetectedSig),
               Cell(Counts.DetectedHw), Cell(Counts.Recovered),
               Cell(Counts.Masked), Cell(Counts.Sdc),
               Cell(Counts.Timeout)});
    Report.set(formatString("int_%s_sdc", getIntegrityTargetName(Target)),
               Counts.Sdc);
    Report.set(formatString("int_%s_detected",
                            getIntegrityTargetName(Target)),
               Counts.DetectedSig + Counts.DetectedHw);
    Report.set(formatString("int_%s_recovered",
                            getIntegrityTargetName(Target)),
               Counts.Recovered);
  }
  std::printf("%s\n", T4.render().c_str());
  OutcomeCounts CheckerTotals = Checker.totals();
  std::printf("Expected shape: zero SDC on every row — corrupted code "
              "bytes are caught by the\nscrubber or dispatch verifier "
              "(recovered = quarantined and retranslated), flipped\n"
              "metadata misses the sealed header or IBTC check word, and "
              "flipped signature state\ntrips the shadow cross-check "
              "(0x5EC) or the technique's own check.\n");
  Report.set("int_injections", Checker.Injections);
  Report.set("int_sdc_total", CheckerTotals.Sdc);
  if (CheckerTotals.Sdc) {
    std::printf("\nFAIL: %llu checker-targeted faults escaped as silent "
                "data corruption\n",
                (unsigned long long)CheckerTotals.Sdc);
    return 1;
  }
  return 0;
}
