//===- BenchUtil.h - Shared helpers for the figure benches ------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run helpers shared by the bench binaries that regenerate the paper's
/// tables and figures. "Time" everywhere is the deterministic cycle
/// count of the VISA cost model (see DESIGN.md, Substitutions), so every
/// bench prints identical numbers on every run.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_BENCH_BENCHUTIL_H
#define CFED_BENCH_BENCHUTIL_H

#include "dbt/Dbt.h"
#include "workloads/Workloads.h"

#include <cstdint>
#include <string>

namespace cfed {
namespace bench {

/// Instruction budget generous enough for every suite workload.
inline constexpr uint64_t RunBudget = 200000000ULL;

/// Cycles of one run under the DBT with \p Config; aborts on any failure
/// (workloads must run clean).
uint64_t runDbtCycles(const AsmProgram &Program, const DbtConfig &Config);

/// Cycles of one native (non-translated) run.
uint64_t runNativeCycles(const AsmProgram &Program);

/// Strips the numeric SPEC prefix for display ("164.gzip" -> "gzip").
std::string shortName(const std::string &Name);

/// Formats a slowdown with the paper's three decimals.
std::string formatSlowdown(double Value);

/// Formats a probability as a percentage with two decimals ("72.62%").
std::string formatPercent(double Value);

} // namespace bench
} // namespace cfed

#endif // CFED_BENCH_BENCHUTIL_H
