//===- BenchUtil.h - Shared helpers for the figure benches ------*- C++ -*-===//
//
// Part of the CFED project (CGO'06 control-flow error detection repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Run helpers shared by the bench binaries that regenerate the paper's
/// tables and figures. "Time" everywhere is the deterministic cycle
/// count of the VISA cost model (see DESIGN.md, Substitutions), so every
/// bench prints identical numbers on every run.
///
//===----------------------------------------------------------------------===//

#ifndef CFED_BENCH_BENCHUTIL_H
#define CFED_BENCH_BENCHUTIL_H

#include "dbt/Dbt.h"
#include "telemetry/Metrics.h"
#include "telemetry/Profile.h"
#include "workloads/Workloads.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cfed {
namespace bench {

/// Instruction budget generous enough for every suite workload.
inline constexpr uint64_t RunBudget = 200000000ULL;

/// Cycles of one run under the DBT with \p Config; aborts on any failure
/// (workloads must run clean).
uint64_t runDbtCycles(const AsmProgram &Program, const DbtConfig &Config);

/// Cycles of one native (non-translated) run.
uint64_t runNativeCycles(const AsmProgram &Program);

/// Hot-path counters from one DBT run: where the interpreter's fetches
/// and the translator's indirect dispatches were answered from.
struct RunMetrics {
  uint64_t Cycles = 0;
  uint64_t Dispatches = 0;
  uint64_t PredecodeHits = 0;
  uint64_t PredecodeMisses = 0;
  uint64_t IbtcHits = 0;
  uint64_t IbtcMisses = 0;
  // Opt-tier counters; zero under the base tier.
  uint64_t TracePromotions = 0;
  uint64_t TracesFormed = 0;
  uint64_t TraceCondFusions = 0;
  uint64_t ChecksElided = 0;

  /// Share of trace promotions that produced a multi-block trace
  /// (conditional seams or straight-line fusion past the first block).
  double traceFusionRate() const {
    return TracePromotions ? double(TracesFormed) / double(TracePromotions)
                           : 0.0;
  }

  double predecodeHitRate() const {
    uint64_t Total = PredecodeHits + PredecodeMisses;
    return Total ? double(PredecodeHits) / double(Total) : 0.0;
  }
  double ibtcHitRate() const {
    uint64_t Total = IbtcHits + IbtcMisses;
    return Total ? double(IbtcHits) / double(Total) : 0.0;
  }
};

/// Like runDbtCycles, additionally reporting the hot-path counters.
RunMetrics runDbtMetrics(const AsmProgram &Program, const DbtConfig &Config);

/// Worker count for campaign benches: the value of a "--jobs N" (or
/// "--jobs=N") argument if present, else CFED_JOBS, else the hardware
/// thread count.
unsigned parseJobs(int Argc, char **Argv);

/// Accumulates one bench binary's machine-readable results and merges
/// them into BENCH_perf.json (CFED_PERF_JSON overrides the path) on
/// destruction, alongside the wall-clock seconds since construction.
/// The file is a flat JSON object with one entry per bench binary;
/// entries from other benches are preserved.
class PerfReport {
public:
  explicit PerfReport(std::string BenchName);
  ~PerfReport();

  PerfReport(const PerfReport &) = delete;
  PerfReport &operator=(const PerfReport &) = delete;

  void set(const std::string &Key, double Value);
  void set(const std::string &Key, uint64_t Value);
  void set(const std::string &Key, unsigned Value) {
    set(Key, static_cast<uint64_t>(Value));
  }

  /// Embeds a telemetry-registry snapshot as the entry's "registry"
  /// field. Snapshot JSON is single-line, which the line-based merge
  /// above depends on.
  void setRegistry(const telemetry::RegistrySnapshot &Snap);

private:
  std::string BenchName;
  telemetry::PhaseProfiler Profiler;
  std::unique_ptr<telemetry::PhaseProfiler::Scope> Wall;
  std::vector<std::pair<std::string, std::string>> Fields;
};

/// Strips the numeric SPEC prefix for display ("164.gzip" -> "gzip").
std::string shortName(const std::string &Name);

/// Formats a slowdown with the paper's three decimals.
std::string formatSlowdown(double Value);

/// Formats a probability as a percentage with two decimals ("72.62%").
std::string formatPercent(double Value);

} // namespace bench
} // namespace cfed

#endif // CFED_BENCH_BENCHUTIL_H
