//===- fig12_slowdown.cpp - Reproduces Figure 12 -------------------------------===//
//
// Figure 12: performance slowdown of the RCF, EdgCF and ECF techniques
// (Jcc-flavor updates, ALLBB checking) relative to the uninstrumented
// DBT baseline, per benchmark, with geometric means for the fp half,
// the int half and the whole suite.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <cstdio>

using namespace cfed;
using namespace cfed::bench;

int main() {
  std::printf("=== Figure 12: slowdown of RCF / EdgCF / ECF over the "
              "DBT baseline ===\n\n");
  const Technique Techs[] = {Technique::Rcf, Technique::EdgCf,
                             Technique::Ecf};
  Table T;
  T.setHeader({"Benchmark", "RCF", "EdgCF", "ECF"});
  std::vector<double> Geo[3];     // Per-technique, whole suite.
  std::vector<double> GeoFp[3], GeoInt[3];

  auto EmitGeomean = [&](const char *Label, std::vector<double> *Values) {
    T.addSeparator();
    T.addRow({Label, formatSlowdown(geometricMean(Values[0])),
              formatSlowdown(geometricMean(Values[1])),
              formatSlowdown(geometricMean(Values[2]))});
  };

  // The paper lists the fp half first.
  bool PrintedFpGeomean = false;
  std::vector<WorkloadInfo> Ordered;
  for (const WorkloadInfo &Info : getWorkloadSuite())
    if (Info.IsFp)
      Ordered.push_back(Info);
  for (const WorkloadInfo &Info : getWorkloadSuite())
    if (!Info.IsFp)
      Ordered.push_back(Info);

  for (size_t Index = 0; Index < Ordered.size(); ++Index) {
    const WorkloadInfo &Info = Ordered[Index];
    AsmProgram Program = assembleWorkload(Info.Name);
    DbtConfig Baseline;
    uint64_t Base = runDbtCycles(Program, Baseline);
    std::vector<std::string> Row = {shortName(Info.Name)};
    for (unsigned TI = 0; TI < 3; ++TI) {
      DbtConfig Config;
      Config.Tech = Techs[TI];
      double Slowdown =
          double(runDbtCycles(Program, Config)) / double(Base);
      Row.push_back(formatSlowdown(Slowdown));
      Geo[TI].push_back(Slowdown);
      (Info.IsFp ? GeoFp[TI] : GeoInt[TI]).push_back(Slowdown);
    }
    T.addRow(Row);
    if (Info.IsFp && (Index + 1 == Ordered.size() ||
                      !Ordered[Index + 1].IsFp) &&
        !PrintedFpGeomean) {
      EmitGeomean("geomean-fp", GeoFp);
      PrintedFpGeomean = true;
    }
  }
  EmitGeomean("geomean-int", GeoInt);
  EmitGeomean("geomean-all", Geo);
  std::printf("%s\n", T.render().c_str());
  std::printf("Paper reference: RCF 1.46, EdgCF 1.41, ECF 1.39 "
              "(geomean-all); fp overheads smaller than int.\n");
  return 0;
}
