//===- ablation_dbt.cpp - DBT design-choice ablations ---------------------------===//
//
// Ablates the translator mechanisms DESIGN.md calls out, on a subset of
// the suite, under EdgCF instrumentation:
//
//  * block chaining (patching Tramp exits into direct jumps),
//  * superblock formation along unconditional chains (Backend),
//  * peephole folding of adjacent signature updates (Backend) — the
//    static analogue of the paper's observation that signatures must be
//    updated everywhere but checked only where the policy demands.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace cfed;
using namespace cfed::bench;

int main() {
  std::printf("=== Ablation: DBT mechanisms under EdgCF ===\n\n");
  // 197.parser's tokenizer has the forward-jump diamonds where
  // superblock formation and update folding can kick in; the others are
  // loop-dominated (backward targets are already translated when first
  // reached, so they chain instead).
  const char *Names[] = {"164.gzip", "181.mcf", "197.parser", "171.swim",
                         "189.lucas"};
  struct Variant {
    const char *Label;
    bool Chain;
    unsigned Superblock;
    bool Fold;
    CheckPolicy Policy;
  };
  const Variant Variants[] = {
      {"baseline (chain)", true, 1, false, CheckPolicy::AllBB},
      {"no chaining", false, 1, false, CheckPolicy::AllBB},
      {"superblocks", true, 8, false, CheckPolicy::AllBB},
      {"superblk+fold (END)", true, 8, true, CheckPolicy::End},
  };

  Table T;
  std::vector<std::string> Header = {"Variant"};
  for (const char *Name : Names)
    Header.push_back(shortName(Name));
  Header.push_back("dispatches");
  Header.push_back("folded");
  T.setHeader(Header);

  for (const Variant &V : Variants) {
    std::vector<std::string> Row = {V.Label};
    uint64_t Dispatches = 0, Folded = 0;
    for (const char *Name : Names) {
      AsmProgram Program = assembleWorkload(Name);
      DbtConfig Config;
      Config.Tech = Technique::EdgCf;
      Config.ChainDirectExits = V.Chain;
      Config.SuperblockLimit = V.Superblock;
      Config.FoldSignatureUpdates = V.Fold;
      Config.Policy = V.Policy;
      Memory Mem;
      Interpreter Interp(Mem);
      Dbt Translator(Mem, Config);
      if (!Translator.load(Program, Interp.state()))
        return 1;
      StopInfo Stop = Translator.run(Interp, RunBudget);
      if (Stop.Kind != StopKind::Halted) {
        std::printf("workload %s failed under %s\n", Name, V.Label);
        return 1;
      }
      Row.push_back(formatString("%.2fM", Interp.cycleCount() / 1e6));
      Dispatches += Translator.dispatchCount();
      Folded += Translator.foldedUpdateCount();
    }
    Row.push_back(formatString("%llu", (unsigned long long)Dispatches));
    Row.push_back(formatString("%llu", (unsigned long long)Folded));
    T.addRow(Row);
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Expected shape: chaining is the dominant mechanism "
              "(no-chaining pays a dispatch per\nblock transition); "
              "superblocks alone roughly match chaining on "
              "loop-dominated code;\nsuperblocks plus folding under a "
              "relaxed policy additionally remove signature updates\n"
              "along unconditional chains.\n");
  return 0;
}
