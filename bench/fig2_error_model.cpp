//===- fig2_error_model.cpp - Reproduces Figure 2 ------------------------------===//
//
// Figure 2: branch-error probabilities per category (A-F and "No
// Error"), split by taken/not-taken and address/flags fault sites, for
// the SPEC-Int and SPEC-Fp halves of the workload suite, under the
// Section 2 error model (one bit flip in the 32-bit branch offset or
// the 4 branch-visible flag bits, weighted by dynamic execution).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "fault/ErrorModel.h"
#include "support/Table.h"

#include <cstdio>

using namespace cfed;
using namespace cfed::bench;

static ErrorModelResult
runSuiteModel(const std::vector<std::string> &Names) {
  ErrorModelResult Suite;
  for (const std::string &Name : Names) {
    AsmProgram Program = assembleWorkload(Name);
    Suite.merge(runErrorModel(Program, RunBudget));
  }
  return Suite;
}

static void printSuite(const char *Title, const ErrorModelResult &Model) {
  std::printf("%s (%llu branch executions, %llu modeled fault sites)\n",
              Title,
              static_cast<unsigned long long>(Model.BranchExecutions),
              static_cast<unsigned long long>(Model.totalSites()));
  Table T;
  T.setHeader({"Category", "Taken/Addr", "Taken/Flags", "NTaken/Addr",
               "NTaken/Flags", "Total"});
  double TotalSites = static_cast<double>(Model.totalSites());
  for (BranchErrorCategory Cat :
       {BranchErrorCategory::A, BranchErrorCategory::B,
        BranchErrorCategory::C, BranchErrorCategory::D,
        BranchErrorCategory::E, BranchErrorCategory::F,
        BranchErrorCategory::NoError}) {
    const CategoryCounts &Row = Model.of(Cat);
    T.addRow({getCategoryName(Cat),
              formatPercent(Row.TakenAddr / TotalSites),
              formatPercent(Row.TakenFlags / TotalSites),
              formatPercent(Row.NotTakenAddr / TotalSites),
              formatPercent(Row.NotTakenFlags / TotalSites),
              formatPercent(Row.total() / TotalSites)});
  }
  std::printf("%s\n", T.render().c_str());
}

int main() {
  std::printf("=== Figure 2: branch-error probabilities under the "
              "single-bit error model ===\n\n");
  printSuite("SPEC-Int 2000 (stand-ins)",
             runSuiteModel(getIntWorkloadNames()));
  printSuite("SPEC-Fp 2000 (stand-ins)",
             runSuiteModel(getFpWorkloadNames()));
  std::printf("Paper shape: most faults are No Error or category F; "
              "among the rest E dominates,\nthen A; not-taken address "
              "faults are never errors.\n");
  return 0;
}
