//===- sec6_dbt_overhead.cpp - Section 6's DBT baseline overhead ----------------===//
//
// Section 6 text: "The average slow down from the native code to running
// on DBT is about 12%." This bench measures the uninstrumented DBT
// against native execution per benchmark and in geometric mean, and
// reports where the overhead comes from (unchained indirect-branch
// dispatches). The optimizing trace tier is run alongside the base
// translator: hot units are retranslated into multi-block traces, which
// recovers part of the dispatch/chaining overhead (tools/
// check_bench_regression.sh gates the opt geomean at CFED_GEOMEAN_MAX).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "vm/Loader.h"

#include <cstdio>

using namespace cfed;
using namespace cfed::bench;

int main() {
  PerfReport Report("sec6_dbt_overhead");
  std::printf("=== Section 6: DBT overhead over native execution ===\n\n");
  Table T;
  T.setHeader({"Benchmark", "native Mcycles", "base slowdown", "opt slowdown",
               "traces", "dispatches", "predecode", "IBTC"});
  std::vector<double> Slowdowns;
  std::vector<double> OptSlowdowns;
  RunMetrics Sums;
  uint64_t OptTraces = 0, OptPromotions = 0, OptCondFusions = 0;
  for (const WorkloadInfo &Info : getWorkloadSuite()) {
    AsmProgram Program = assembleWorkload(Info.Name);
    uint64_t Native = runNativeCycles(Program);
    RunMetrics M = runDbtMetrics(Program, DbtConfig{});
    DbtConfig OptConfig;
    OptConfig.Tier = DbtTier::Opt;
    RunMetrics Opt = runDbtMetrics(Program, OptConfig);
    double Slowdown = double(M.Cycles) / double(Native);
    double OptSlowdown = double(Opt.Cycles) / double(Native);
    Slowdowns.push_back(Slowdown);
    OptSlowdowns.push_back(OptSlowdown);
    Sums.Dispatches += M.Dispatches;
    Sums.PredecodeHits += M.PredecodeHits;
    Sums.PredecodeMisses += M.PredecodeMisses;
    Sums.IbtcHits += M.IbtcHits;
    Sums.IbtcMisses += M.IbtcMisses;
    OptTraces += Opt.TracesFormed;
    OptPromotions += Opt.TracePromotions;
    OptCondFusions += Opt.TraceCondFusions;
    T.addRow({shortName(Info.Name),
              formatString("%.2f", Native / 1e6), formatSlowdown(Slowdown),
              formatSlowdown(OptSlowdown),
              formatString("%llu", (unsigned long long)Opt.TracesFormed),
              formatString("%llu", (unsigned long long)M.Dispatches),
              formatPercent(M.predecodeHitRate()),
              formatPercent(M.ibtcHitRate())});
  }
  T.addSeparator();
  T.addRow({"geomean", "", formatSlowdown(geometricMean(Slowdowns)),
            formatSlowdown(geometricMean(OptSlowdowns)), "", "",
            formatPercent(Sums.predecodeHitRate()),
            formatPercent(Sums.ibtcHitRate())});
  std::printf("%s\n", T.render().c_str());
  std::printf("Paper reference: about 12%% average DBT overhead.\n"
              "opt slowdown: the optimizing trace tier (hot units "
              "retranslated into\nmulti-block traces with folded updates); "
              "traces: multi-block traces formed.\npredecode/IBTC: share of "
              "instruction fetches answered by the predecoded-page\ncache "
              "and of TrampR dispatches answered by the indirect-branch "
              "translation cache.\n");
  Report.set("geomean_slowdown", geometricMean(Slowdowns));
  Report.set("geomean_slowdown_opt", geometricMean(OptSlowdowns));
  Report.set("trace_fusion_rate",
             OptPromotions ? double(OptTraces) / double(OptPromotions) : 0.0);
  Report.set("traces_formed", OptTraces);
  Report.set("trace_cond_fusions", OptCondFusions);
  Report.set("predecode_hit_rate", Sums.predecodeHitRate());
  Report.set("ibtc_hit_rate", Sums.ibtcHitRate());
  Report.set("dispatches", Sums.Dispatches);
  return 0;
}
