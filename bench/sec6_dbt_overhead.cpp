//===- sec6_dbt_overhead.cpp - Section 6's DBT baseline overhead ----------------===//
//
// Section 6 text: "The average slow down from the native code to running
// on DBT is about 12%." This bench measures the uninstrumented DBT
// against native execution per benchmark and in geometric mean, and
// reports where the overhead comes from (unchained indirect-branch
// dispatches).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "vm/Loader.h"

#include <cstdio>

using namespace cfed;
using namespace cfed::bench;

int main() {
  PerfReport Report("sec6_dbt_overhead");
  std::printf("=== Section 6: DBT overhead over native execution ===\n\n");
  Table T;
  T.setHeader({"Benchmark", "native Mcycles", "DBT Mcycles", "slowdown",
               "dispatches", "predecode", "IBTC"});
  std::vector<double> Slowdowns;
  RunMetrics Sums;
  for (const WorkloadInfo &Info : getWorkloadSuite()) {
    AsmProgram Program = assembleWorkload(Info.Name);
    uint64_t Native = runNativeCycles(Program);
    RunMetrics M = runDbtMetrics(Program, DbtConfig{});
    double Slowdown = double(M.Cycles) / double(Native);
    Slowdowns.push_back(Slowdown);
    Sums.Dispatches += M.Dispatches;
    Sums.PredecodeHits += M.PredecodeHits;
    Sums.PredecodeMisses += M.PredecodeMisses;
    Sums.IbtcHits += M.IbtcHits;
    Sums.IbtcMisses += M.IbtcMisses;
    T.addRow({shortName(Info.Name),
              formatString("%.2f", Native / 1e6),
              formatString("%.2f", M.Cycles / 1e6), formatSlowdown(Slowdown),
              formatString("%llu", (unsigned long long)M.Dispatches),
              formatPercent(M.predecodeHitRate()),
              formatPercent(M.ibtcHitRate())});
  }
  T.addSeparator();
  T.addRow({"geomean", "", "", formatSlowdown(geometricMean(Slowdowns)), "",
            formatPercent(Sums.predecodeHitRate()),
            formatPercent(Sums.ibtcHitRate())});
  std::printf("%s\n", T.render().c_str());
  std::printf("Paper reference: about 12%% average DBT overhead.\n"
              "predecode/IBTC: share of instruction fetches answered by "
              "the predecoded-page\ncache and of TrampR dispatches "
              "answered by the indirect-branch translation cache.\n");
  Report.set("geomean_slowdown", geometricMean(Slowdowns));
  Report.set("predecode_hit_rate", Sums.predecodeHitRate());
  Report.set("ibtc_hit_rate", Sums.ibtcHitRate());
  Report.set("dispatches", Sums.Dispatches);
  return 0;
}
