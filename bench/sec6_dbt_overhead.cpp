//===- sec6_dbt_overhead.cpp - Section 6's DBT baseline overhead ----------------===//
//
// Section 6 text: "The average slow down from the native code to running
// on DBT is about 12%." This bench measures the uninstrumented DBT
// against native execution per benchmark and in geometric mean, and
// reports where the overhead comes from (unchained indirect-branch
// dispatches).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "vm/Loader.h"

#include <cstdio>

using namespace cfed;
using namespace cfed::bench;

int main() {
  std::printf("=== Section 6: DBT overhead over native execution ===\n\n");
  Table T;
  T.setHeader({"Benchmark", "native Mcycles", "DBT Mcycles", "slowdown",
               "dispatches"});
  std::vector<double> Slowdowns;
  for (const WorkloadInfo &Info : getWorkloadSuite()) {
    AsmProgram Program = assembleWorkload(Info.Name);
    uint64_t Native = runNativeCycles(Program);

    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, DbtConfig{});
    if (!Translator.load(Program, Interp.state()))
      return 1;
    Translator.run(Interp, RunBudget);
    uint64_t Dbt = Interp.cycleCount();
    double Slowdown = double(Dbt) / double(Native);
    Slowdowns.push_back(Slowdown);
    T.addRow({shortName(Info.Name),
              formatString("%.2f", Native / 1e6),
              formatString("%.2f", Dbt / 1e6), formatSlowdown(Slowdown),
              formatString("%llu", (unsigned long long)
                                        Translator.dispatchCount())});
  }
  T.addSeparator();
  T.addRow({"geomean", "", "", formatSlowdown(geometricMean(Slowdowns)),
            ""});
  std::printf("%s\n", T.render().c_str());
  std::printf("Paper reference: about 12%% average DBT overhead.\n");
  return 0;
}
