//===- micro_dbt.cpp - google-benchmark microbenchmarks -------------------------===//
//
// Host-time microbenchmarks of the infrastructure itself (the only
// bench measuring wall-clock rather than model cycles): assembler
// throughput, encode/decode, interpreter dispatch, whole-program
// translation, the predecode and IBTC hot paths, and fault-campaign
// throughput per job count.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "bench/BenchUtil.h"
#include "dbt/Dbt.h"
#include "fault/Campaign.h"
#include "support/ThreadPool.h"
#include "telemetry/Metrics.h"
#include "telemetry/Profile.h"
#include "telemetry/Trace.h"
#include "vm/Loader.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace cfed;

namespace {
// Filled by the hot-path benchmarks, recorded into BENCH_perf.json at
// exit.
double GPredecodeHitRate = 0.0;
double GIbtcHitRate = 0.0;
double GTelemetryOverhead = 0.0;
} // namespace

static void BM_Assembler(benchmark::State &State) {
  std::string Source = getWorkloadSource("164.gzip");
  for (auto _ : State) {
    AsmResult Result = assembleProgram(Source);
    benchmark::DoNotOptimize(Result.Program.Code.data());
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Source.size());
}
BENCHMARK(BM_Assembler);

static void BM_EncodeDecode(benchmark::State &State) {
  Instruction I = insn::rri(Opcode::Lea, RegPCP, RegPCP, 12345);
  uint8_t Buffer[InsnSize];
  for (auto _ : State) {
    I.encode(Buffer);
    auto Decoded = Instruction::decode(Buffer);
    benchmark::DoNotOptimize(Decoded);
  }
}
BENCHMARK(BM_EncodeDecode);

static void BM_InterpreterDispatch(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("181.mcf");
  for (auto _ : State) {
    Memory Mem;
    Interpreter Interp(Mem);
    loadProgram(Program, LoadMode::Native, Mem, Interp.state());
    Interp.run(100000);
    benchmark::DoNotOptimize(Interp.cycleCount());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 100000);
}
BENCHMARK(BM_InterpreterDispatch);

/// Interpreter fetch through the predecoded-page cache: reports the share
/// of fetches answered from the decoded side arrays.
static void BM_PredecodedFetch(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("181.mcf");
  double HitRate = 0.0;
  for (auto _ : State) {
    Memory Mem;
    Interpreter Interp(Mem);
    loadProgram(Program, LoadMode::Native, Mem, Interp.state());
    Interp.run(100000);
    benchmark::DoNotOptimize(Interp.cycleCount());
    uint64_t Hits = Mem.predecodeHitCount();
    uint64_t Misses = Mem.predecodeMissCount();
    HitRate = Hits + Misses ? double(Hits) / double(Hits + Misses) : 0.0;
  }
  GPredecodeHitRate = HitRate;
  State.counters["predecode_hit_rate"] = HitRate;
  State.SetItemsProcessed(int64_t(State.iterations()) * 100000);
}
BENCHMARK(BM_PredecodedFetch);

/// Indirect-branch dispatch on a call-heavy program: every ret exits
/// through TrampR, so the IBTC answers the repeats.
static void BM_IbtcDispatch(benchmark::State &State) {
  RandomProgramOptions Options;
  Options.Seed = 97;
  Options.NumSegments = 8;
  Options.NumHelpers = 4;
  Options.LoopTrip = 32;
  AsmResult Result = assembleProgram(generateRandomProgram(Options));
  if (!Result.succeeded()) {
    State.SkipWithError("random program failed to assemble");
    return;
  }
  double HitRate = 0.0;
  uint64_t Dispatches = 0;
  for (auto _ : State) {
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, DbtConfig{});
    if (!Translator.load(Result.Program, Interp.state())) {
      State.SkipWithError("program failed to load under the DBT");
      return;
    }
    Translator.run(Interp, 10000000);
    benchmark::DoNotOptimize(Interp.cycleCount());
    uint64_t Hits = Translator.ibtcHitCount();
    uint64_t Misses = Translator.ibtcMissCount();
    HitRate = Hits + Misses ? double(Hits) / double(Hits + Misses) : 0.0;
    Dispatches = Translator.dispatchCount();
  }
  GIbtcHitRate = HitRate;
  State.counters["ibtc_hit_rate"] = HitRate;
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Dispatches));
}
BENCHMARK(BM_IbtcDispatch);

/// Full fault-injection campaign throughput (injections/second) at the
/// given job count.
static void BM_CampaignThroughput(benchmark::State &State) {
  unsigned Jobs = static_cast<unsigned>(State.range(0));
  RandomProgramOptions Options;
  Options.Seed = 31;
  Options.NumSegments = 6;
  Options.LoopTrip = 12;
  AsmResult Result = assembleProgram(generateRandomProgram(Options));
  if (!Result.succeeded()) {
    State.SkipWithError("random program failed to assemble");
    return;
  }
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  FaultCampaign Campaign(Result.Program, Config);
  if (!Campaign.prepare(50000000ULL)) {
    State.SkipWithError("campaign prepare failed");
    return;
  }
  uint64_t Injections = 0;
  for (auto _ : State) {
    CampaignResult R = Campaign.run(40, 1234, SiteClass::Any, Jobs);
    benchmark::DoNotOptimize(R.Injections);
    Injections += R.Injections;
  }
  State.counters["jobs"] = double(Jobs);
  State.SetItemsProcessed(int64_t(Injections));
}
BENCHMARK(BM_CampaignThroughput)
    ->ArgName("jobs")
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Cost of full telemetry (event tracer + phase profiler attached) over
/// the disabled default (registry counters only, no tracer/profiler) on
/// the same DBT run. Reports the relative overhead; the hard <=2% gate
/// on the *disabled* configuration lives in TelemetryTest.
static void BM_TelemetryOverhead(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("181.mcf");
  auto RunOnce = [&Program](bool Enabled) {
    Memory Mem;
    Interpreter Interp(Mem);
    telemetry::MetricsRegistry Registry;
    Dbt Translator(Mem, DbtConfig{}, &Registry);
    telemetry::EventTracer Tracer(4096);
    telemetry::PhaseProfiler Profiler;
    if (Enabled) {
      Translator.setTracer(&Tracer);
      Translator.setProfiler(&Profiler);
    }
    if (!Translator.load(Program, Interp.state()))
      return -1.0;
    auto Begin = std::chrono::steady_clock::now();
    Translator.run(Interp, 1000000);
    auto End = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(Interp.cycleCount());
    return std::chrono::duration<double>(End - Begin).count();
  };
  double BestDisabled = -1.0, BestEnabled = -1.0;
  for (auto _ : State) {
    double Disabled = RunOnce(false);
    double Enabled = RunOnce(true);
    if (Disabled < 0 || Enabled < 0) {
      State.SkipWithError("program failed to load under the DBT");
      return;
    }
    if (BestDisabled < 0 || Disabled < BestDisabled)
      BestDisabled = Disabled;
    if (BestEnabled < 0 || Enabled < BestEnabled)
      BestEnabled = Enabled;
  }
  GTelemetryOverhead =
      BestDisabled > 0 ? BestEnabled / BestDisabled - 1.0 : 0.0;
  State.counters["telemetry_overhead"] = GTelemetryOverhead;
  State.SetItemsProcessed(int64_t(State.iterations()) * 2000000);
}
BENCHMARK(BM_TelemetryOverhead);

static void BM_Translation(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("176.gcc");
  for (auto _ : State) {
    Memory Mem;
    Interpreter Interp(Mem);
    DbtConfig Config;
    Config.Tech = Technique::Rcf;
    Config.EagerTranslate = true;
    Dbt Translator(Mem, Config);
    bool Ok = Translator.load(Program, Interp.state());
    benchmark::DoNotOptimize(Ok);
    State.counters["blocks"] =
        static_cast<double>(Translator.blocks().size());
  }
}
BENCHMARK(BM_Translation);

int main(int argc, char **argv) {
  if (unsigned Jobs = ThreadPool::defaultJobCount(); Jobs > 1)
    benchmark::RegisterBenchmark("BM_CampaignThroughput", BM_CampaignThroughput)
        ->ArgName("jobs")
        ->Arg(static_cast<int64_t>(Jobs))
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  {
    bench::PerfReport Report("micro_dbt");
    benchmark::RunSpecifiedBenchmarks();
    if (GTelemetryOverhead != 0.0)
      Report.set("telemetry_overhead", GTelemetryOverhead);
    // The published hit rates come from the deterministic reference runs
    // below, NOT from the benchmark globals: a --benchmark_filter that
    // skips BM_PredecodedFetch/BM_IbtcDispatch would leave those at 0.0
    // and record a bogus total miss into BENCH_perf.json.
    {
      // Reference run 1: 181.mcf under the default DBT. Its predecode
      // hit rate and registry snapshot go into BENCH_perf.json.
      AsmProgram Program = assembleWorkload("181.mcf");
      Memory Mem;
      Interpreter Interp(Mem);
      telemetry::MetricsRegistry Registry;
      Dbt Translator(Mem, DbtConfig{}, &Registry);
      if (Translator.load(Program, Interp.state())) {
        Translator.run(Interp, bench::RunBudget);
        Interp.publishMetrics(Registry);
        Report.setRegistry(Registry.snapshot());
        uint64_t Hits = Mem.predecodeHitCount();
        uint64_t Misses = Mem.predecodeMissCount();
        if (Hits + Misses)
          Report.set("predecode_hit_rate",
                     double(Hits) / double(Hits + Misses));
      }
    }
    {
      // Reference run 2: the call-heavy random program BM_IbtcDispatch
      // uses (every ret exits through TrampR), for the IBTC hit rate.
      RandomProgramOptions Options;
      Options.Seed = 97;
      Options.NumSegments = 8;
      Options.NumHelpers = 4;
      Options.LoopTrip = 32;
      AsmResult Result = assembleProgram(generateRandomProgram(Options));
      if (Result.succeeded()) {
        Memory Mem;
        Interpreter Interp(Mem);
        Dbt Translator(Mem, DbtConfig{});
        if (Translator.load(Result.Program, Interp.state())) {
          Translator.run(Interp, 10000000);
          uint64_t Hits = Translator.ibtcHitCount();
          uint64_t Misses = Translator.ibtcMissCount();
          if (Hits + Misses)
            Report.set("ibtc_hit_rate",
                       double(Hits) / double(Hits + Misses));
        }
      }
    }
  }
  benchmark::Shutdown();
  return 0;
}
