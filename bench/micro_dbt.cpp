//===- micro_dbt.cpp - google-benchmark microbenchmarks -------------------------===//
//
// Host-time microbenchmarks of the infrastructure itself (the only
// bench measuring wall-clock rather than model cycles): assembler
// throughput, encode/decode, interpreter dispatch, whole-program
// translation, the predecode and IBTC hot paths, and fault-campaign
// throughput per job count.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "bench/BenchUtil.h"
#include "dbt/Dbt.h"
#include "fault/Campaign.h"
#include "support/ThreadPool.h"
#include "telemetry/LiveExport.h"
#include "telemetry/Metrics.h"
#include "telemetry/Profile.h"
#include "telemetry/Provenance.h"
#include "telemetry/Trace.h"
#include "vm/Loader.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <ctime>
#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

using namespace cfed;

namespace {
// Filled by the hot-path benchmarks, recorded into BENCH_perf.json at
// exit.
double GPredecodeHitRate = 0.0;
double GIbtcHitRate = 0.0;
double GTelemetryOverhead = 0.0;
double GScrubOverhead = 0.0;
double GLiveExportOverhead = 0.0;
double GDigestOverhead = 0.0;
double GShadowStackOverhead = 0.0;

/// The configurations the scrub-overhead comparison runs: the unchained
/// dispatch loop (every block exit goes through the dispatcher, so the
/// scrubber and dispatch verifier actually run at their configured
/// cadence) with the self-integrity machinery off versus on.
DbtConfig scrubBaselineConfig() {
  DbtConfig Config;
  Config.ChainDirectExits = false;
  return Config;
}

DbtConfig scrubEnabledConfig() {
  DbtConfig Config = scrubBaselineConfig();
  // A moderate periodic cadence: a full-cache scrub every 1024
  // dispatches plus one block rehash per 64 dispatch hits. The fault
  // campaigns crank both down to intervals of 1-16 to catch faults
  // within their short windows; that assurance configuration is
  // deliberately not what the overhead gate measures.
  Config.ScrubInterval = 1024;
  Config.VerifyDispatchInterval = 64;
  return Config;
}

/// One timed 181.mcf DBT run, optionally with a service live exporter
/// publishing an atomic snapshot file every 5 ms alongside it. Shared by
/// BM_LiveExportOverhead and the deterministic reference run in main().
double timedLiveExportRun(const AsmProgram &Program, bool WithExporter) {
  Memory Mem;
  Interpreter Interp(Mem);
  telemetry::MetricsRegistry Registry;
  Dbt Translator(Mem, DbtConfig{}, &Registry);
  if (!Translator.load(Program, Interp.state()))
    return -1.0;
  std::string Path = "/tmp/cfed_bench_live_" +
                     std::to_string(::getpid()) + ".live.json";
  std::unique_ptr<telemetry::LiveExporter> Exporter;
  if (WithExporter) {
    telemetry::LiveExporter::Config Cfg;
    Cfg.Path = Path;
    Cfg.RunId = "bench";
    Cfg.IntervalMs = 5;
    Exporter = std::make_unique<telemetry::LiveExporter>(
        Cfg, [&Registry](telemetry::RegistrySnapshot &Snap,
                         telemetry::Heartbeat &) {
          Snap = Registry.snapshot();
        });
    Exporter->start();
  }
  auto Begin = std::chrono::steady_clock::now();
  Translator.run(Interp, 1000000);
  auto End = std::chrono::steady_clock::now();
  if (Exporter)
    Exporter->stop();
  std::remove(Path.c_str());
  benchmark::DoNotOptimize(Interp.cycleCount());
  return std::chrono::duration<double>(End - Begin).count();
}

/// Configuration the digest gate measures under: golden-trace capture
/// is a campaign feature — the oracle is recorded and every faulted run
/// replayed under the campaign's checker configuration — so the
/// deployment-relevant ratio is digests-on versus digests-off with the
/// default campaign technique active, not against a bare unchecked run.
/// (Same pick-the-configuration-it-ships-in rationale as the scrub
/// gate's scrubBaselineConfig above.)
DbtConfig digestCampaignConfig() {
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  return Config;
}

/// Thread CPU seconds: the digest gate compares millisecond-scale runs
/// on a possibly loaded shared runner, where a single preemption slice
/// is larger than the whole effect being measured. CPU time excludes
/// scheduler interference (the same reason the benchmark library
/// reports CPU time), leaving the capture's compute cost.
double threadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec Ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &Ts);
  return static_cast<double>(Ts.tv_sec) + Ts.tv_nsec * 1e-9;
#else
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
#endif
}

/// Instruction budget for one timed digest run. Short on purpose: a
/// ~1-2 ms run fits inside a scheduler timeslice, so on a busy shared
/// runner enough of the off/on pairs below execute unpreempted for a
/// robust estimate, and the staged record stream stays cache-resident —
/// the gate measures the capture path itself, not the shared box's LLC
/// weather. (Chain materialization happens outside the timed window,
/// like the campaign's own analysis pass.)
constexpr uint64_t DigestRunBudget = 100000;

/// Off/on run pairs per digest-overhead estimate. Each pair is ~3 ms of
/// CPU, so 40 pairs keep the whole estimate around a tenth of a second
/// while giving the median enough clean samples to shrug off load
/// spikes.
constexpr int DigestRunPairs = 40;

/// One timed 181.mcf DBT run under digestCampaignConfig, optionally
/// with a golden-trace digest recorder attached (Marker mode: the
/// translator plants a Digest capture marker at every sub-block
/// boundary at load time, so the run pays the full per-boundary
/// register/flag fold). The recorder is passed in and reset per run
/// rather than constructed here: the bench measures the steady-state
/// capture cost, with the record vector's capacity already faulted in —
/// the pattern a long golden-trace recording or a recorder-reusing
/// campaign sees — not the allocator. Shared by BM_DigestCapture and
/// the deterministic reference run in main().
double timedDigestRun(const AsmProgram &Program,
                      telemetry::DigestRecorder *Digests) {
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, digestCampaignConfig());
  if (Digests) {
    Digests->resetRun();
    Translator.setDigestRecorder(Digests);
  }
  if (!Translator.load(Program, Interp.state()))
    return -1.0;
  double Begin = threadCpuSeconds();
  Translator.run(Interp, DigestRunBudget);
  double End = threadCpuSeconds();
  benchmark::DoNotOptimize(Interp.cycleCount());
  if (Digests)
    benchmark::DoNotOptimize(Digests->records().size());
  return End - Begin;
}

/// The digest_overhead estimator: median of per-pair on/off ratios over
/// DigestRunPairs interleaved pairs. A best-of-N-each-side minimum
/// needs one clean off run AND one clean on run and still tracks the
/// box's frequency state; the per-pair ratio cancels that state (both
/// runs of a pair execute back to back), and the median discards the
/// pairs a load spike landed on. Returns a negative value if the
/// program fails to load.
double measureDigestOverhead(const AsmProgram &Program,
                             telemetry::DigestRecorder &Digests) {
  std::vector<double> Ratios;
  for (int I = 0; I < DigestRunPairs; ++I) {
    double Off = timedDigestRun(Program, nullptr);
    double On = timedDigestRun(Program, &Digests);
    if (Off <= 0 || On < 0)
      return -1.0;
    Ratios.push_back(On / Off - 1.0);
  }
  std::sort(Ratios.begin(), Ratios.end());
  return Ratios[Ratios.size() / 2];
}
/// Configuration the shadow-stack gate measures under: the shadow
/// return stack deploys alongside a signature scheme (it exists to
/// close the forged-return hole every signature accepts), so the
/// deployment-relevant ratio is shadow-on versus shadow-off with EdgCF
/// active — the same pick-the-configuration-it-ships-in rationale as
/// the scrub and digest gates.
DbtConfig shadowStackConfig(bool ShadowStack) {
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  Config.ShadowStack = ShadowStack;
  return Config;
}

/// One timed run of the call-heavy 186.crafty workload (the shadow
/// stack only costs on call/ret, so a call-dense program is the
/// worst case the gate should price). Same short-budget CPU-time
/// rationale as timedDigestRun.
double timedShadowStackRun(const AsmProgram &Program, bool ShadowStack) {
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, shadowStackConfig(ShadowStack));
  if (!Translator.load(Program, Interp.state()))
    return -1.0;
  double Begin = threadCpuSeconds();
  Translator.run(Interp, DigestRunBudget);
  double End = threadCpuSeconds();
  benchmark::DoNotOptimize(Interp.cycleCount());
  return End - Begin;
}

/// The shadow_stack_overhead estimator: median of per-pair on/off
/// ratios, identical in structure to measureDigestOverhead and for the
/// same reason (the effect is smaller than one scheduler slice). The
/// median can be a small *negative* number when the shadow stack is in
/// the noise, so failure is signalled with -2.0, not any negative.
double measureShadowStackOverhead(const AsmProgram &Program) {
  std::vector<double> Ratios;
  for (int I = 0; I < DigestRunPairs; ++I) {
    double Off = timedShadowStackRun(Program, false);
    double On = timedShadowStackRun(Program, true);
    if (Off <= 0 || On < 0)
      return -2.0;
    Ratios.push_back(On / Off - 1.0);
  }
  std::sort(Ratios.begin(), Ratios.end());
  return Ratios[Ratios.size() / 2];
}
} // namespace

static void BM_Assembler(benchmark::State &State) {
  std::string Source = getWorkloadSource("164.gzip");
  for (auto _ : State) {
    AsmResult Result = assembleProgram(Source);
    benchmark::DoNotOptimize(Result.Program.Code.data());
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Source.size());
}
BENCHMARK(BM_Assembler);

static void BM_EncodeDecode(benchmark::State &State) {
  Instruction I = insn::rri(Opcode::Lea, RegPCP, RegPCP, 12345);
  uint8_t Buffer[InsnSize];
  for (auto _ : State) {
    I.encode(Buffer);
    auto Decoded = Instruction::decode(Buffer);
    benchmark::DoNotOptimize(Decoded);
  }
}
BENCHMARK(BM_EncodeDecode);

static void BM_InterpreterDispatch(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("181.mcf");
  for (auto _ : State) {
    Memory Mem;
    Interpreter Interp(Mem);
    loadProgram(Program, LoadMode::Native, Mem, Interp.state());
    Interp.run(100000);
    benchmark::DoNotOptimize(Interp.cycleCount());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 100000);
}
BENCHMARK(BM_InterpreterDispatch);

/// Interpreter fetch through the predecoded-page cache: reports the share
/// of fetches answered from the decoded side arrays.
static void BM_PredecodedFetch(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("181.mcf");
  double HitRate = 0.0;
  for (auto _ : State) {
    Memory Mem;
    Interpreter Interp(Mem);
    loadProgram(Program, LoadMode::Native, Mem, Interp.state());
    Interp.run(100000);
    benchmark::DoNotOptimize(Interp.cycleCount());
    uint64_t Hits = Mem.predecodeHitCount();
    uint64_t Misses = Mem.predecodeMissCount();
    HitRate = Hits + Misses ? double(Hits) / double(Hits + Misses) : 0.0;
  }
  GPredecodeHitRate = HitRate;
  State.counters["predecode_hit_rate"] = HitRate;
  State.SetItemsProcessed(int64_t(State.iterations()) * 100000);
}
BENCHMARK(BM_PredecodedFetch);

/// Indirect-branch dispatch on a call-heavy program: every ret exits
/// through TrampR, so the IBTC answers the repeats.
static void BM_IbtcDispatch(benchmark::State &State) {
  RandomProgramOptions Options;
  Options.Seed = 97;
  Options.NumSegments = 8;
  Options.NumHelpers = 4;
  Options.LoopTrip = 32;
  AsmResult Result = assembleProgram(generateRandomProgram(Options));
  if (!Result.succeeded()) {
    State.SkipWithError("random program failed to assemble");
    return;
  }
  double HitRate = 0.0;
  uint64_t Dispatches = 0;
  for (auto _ : State) {
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, DbtConfig{});
    if (!Translator.load(Result.Program, Interp.state())) {
      State.SkipWithError("program failed to load under the DBT");
      return;
    }
    Translator.run(Interp, 10000000);
    benchmark::DoNotOptimize(Interp.cycleCount());
    uint64_t Hits = Translator.ibtcHitCount();
    uint64_t Misses = Translator.ibtcMissCount();
    HitRate = Hits + Misses ? double(Hits) / double(Hits + Misses) : 0.0;
    Dispatches = Translator.dispatchCount();
  }
  GIbtcHitRate = HitRate;
  State.counters["ibtc_hit_rate"] = HitRate;
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Dispatches));
}
BENCHMARK(BM_IbtcDispatch);

/// Full fault-injection campaign throughput (injections/second) at the
/// given job count.
static void BM_CampaignThroughput(benchmark::State &State) {
  unsigned Jobs = static_cast<unsigned>(State.range(0));
  RandomProgramOptions Options;
  Options.Seed = 31;
  Options.NumSegments = 6;
  Options.LoopTrip = 12;
  AsmResult Result = assembleProgram(generateRandomProgram(Options));
  if (!Result.succeeded()) {
    State.SkipWithError("random program failed to assemble");
    return;
  }
  DbtConfig Config;
  Config.Tech = Technique::EdgCf;
  FaultCampaign Campaign(Result.Program, Config);
  if (!Campaign.prepare(50000000ULL)) {
    State.SkipWithError("campaign prepare failed");
    return;
  }
  uint64_t Injections = 0;
  for (auto _ : State) {
    CampaignResult R = Campaign.run(40, 1234, SiteClass::Any, Jobs);
    benchmark::DoNotOptimize(R.Injections);
    Injections += R.Injections;
  }
  State.counters["jobs"] = double(Jobs);
  State.SetItemsProcessed(int64_t(Injections));
}
BENCHMARK(BM_CampaignThroughput)
    ->ArgName("jobs")
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Cost of full telemetry (event tracer + phase profiler attached) over
/// the disabled default (registry counters only, no tracer/profiler) on
/// the same DBT run. Reports the relative overhead; the hard <=2% gate
/// on the *disabled* configuration lives in TelemetryTest.
static void BM_TelemetryOverhead(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("181.mcf");
  auto RunOnce = [&Program](bool Enabled) {
    Memory Mem;
    Interpreter Interp(Mem);
    telemetry::MetricsRegistry Registry;
    Dbt Translator(Mem, DbtConfig{}, &Registry);
    telemetry::EventTracer Tracer(4096);
    telemetry::PhaseProfiler Profiler;
    if (Enabled) {
      Translator.setTracer(&Tracer);
      Translator.setProfiler(&Profiler);
    }
    if (!Translator.load(Program, Interp.state()))
      return -1.0;
    auto Begin = std::chrono::steady_clock::now();
    Translator.run(Interp, 1000000);
    auto End = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(Interp.cycleCount());
    return std::chrono::duration<double>(End - Begin).count();
  };
  double BestDisabled = -1.0, BestEnabled = -1.0;
  for (auto _ : State) {
    double Disabled = RunOnce(false);
    double Enabled = RunOnce(true);
    if (Disabled < 0 || Enabled < 0) {
      State.SkipWithError("program failed to load under the DBT");
      return;
    }
    if (BestDisabled < 0 || Disabled < BestDisabled)
      BestDisabled = Disabled;
    if (BestEnabled < 0 || Enabled < BestEnabled)
      BestEnabled = Enabled;
  }
  GTelemetryOverhead =
      BestDisabled > 0 ? BestEnabled / BestDisabled - 1.0 : 0.0;
  State.counters["telemetry_overhead"] = GTelemetryOverhead;
  State.SetItemsProcessed(int64_t(State.iterations()) * 2000000);
}
BENCHMARK(BM_TelemetryOverhead);

/// Cost of the self-integrity machinery (periodic code-cache scrubbing
/// every 64 dispatches + lazy dispatch verification every 8th hit) over
/// the same unchained dispatch loop with integrity off. Reports the
/// relative overhead; tools/check_bench_regression.sh gates it at
/// CFED_SCRUB_OVERHEAD_MAX (default 0.15).
static void BM_ScrubOverhead(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("181.mcf");
  auto RunOnce = [&Program](const DbtConfig &Config) {
    Memory Mem;
    Interpreter Interp(Mem);
    Dbt Translator(Mem, Config);
    if (!Translator.load(Program, Interp.state()))
      return -1.0;
    auto Begin = std::chrono::steady_clock::now();
    Translator.run(Interp, 1000000);
    auto End = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(Interp.cycleCount());
    return std::chrono::duration<double>(End - Begin).count();
  };
  double BestOff = -1.0, BestOn = -1.0;
  for (auto _ : State) {
    double Off = RunOnce(scrubBaselineConfig());
    double On = RunOnce(scrubEnabledConfig());
    if (Off < 0 || On < 0) {
      State.SkipWithError("program failed to load under the DBT");
      return;
    }
    if (BestOff < 0 || Off < BestOff)
      BestOff = Off;
    if (BestOn < 0 || On < BestOn)
      BestOn = On;
  }
  GScrubOverhead = BestOff > 0 ? BestOn / BestOff - 1.0 : 0.0;
  State.counters["scrub_overhead"] = GScrubOverhead;
  State.SetItemsProcessed(int64_t(State.iterations()) * 2000000);
}
BENCHMARK(BM_ScrubOverhead);

/// Cost of an *active* live exporter — the service thread snapshotting
/// the registry and atomically rewriting the snapshot file every 5 ms —
/// over the same DBT run with no exporter. The hot path only pays for
/// the relaxed counter increments it already does; the snapshot/format/
/// write cycle rides the exporter thread. Reports the relative overhead;
/// tools/check_bench_regression.sh gates it at CFED_EXPORT_OVERHEAD_MAX
/// (default 0.15).
static void BM_LiveExportOverhead(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("181.mcf");
  double BestOff = -1.0, BestOn = -1.0;
  for (auto _ : State) {
    double Off = timedLiveExportRun(Program, false);
    double On = timedLiveExportRun(Program, true);
    if (Off < 0 || On < 0) {
      State.SkipWithError("program failed to load under the DBT");
      return;
    }
    if (BestOff < 0 || Off < BestOff)
      BestOff = Off;
    if (BestOn < 0 || On < BestOn)
      BestOn = On;
  }
  GLiveExportOverhead = BestOff > 0 ? BestOn / BestOff - 1.0 : 0.0;
  State.counters["live_export_overhead"] = GLiveExportOverhead;
  State.SetItemsProcessed(int64_t(State.iterations()) * 2000000);
}
BENCHMARK(BM_LiveExportOverhead);

/// Cost of golden-trace digest capture — a rolling FNV fold of the full
/// architectural state at every sub-block boundary — over the same
/// checker-on campaign run (digestCampaignConfig) with no recorder
/// attached. Reports the relative overhead;
/// tools/check_bench_regression.sh gates it at CFED_DIGEST_OVERHEAD_MAX
/// (default 0.15).
static void BM_DigestCapture(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("181.mcf");
  telemetry::DigestRecorder Digests;
  double Overhead = 0.0;
  for (auto _ : State) {
    Overhead = measureDigestOverhead(Program, Digests);
    if (Overhead < 0) {
      State.SkipWithError("program failed to load under the DBT");
      return;
    }
  }
  GDigestOverhead = Overhead;
  State.counters["digest_overhead"] = GDigestOverhead;
  State.SetItemsProcessed(int64_t(State.iterations()) * 2 *
                          int64_t(DigestRunPairs) *
                          int64_t(DigestRunBudget));
}
BENCHMARK(BM_DigestCapture);

/// Cost of the shadow return stack (a push per call, a check+pop per
/// ret, 0x5AC on mismatch) over the same EdgCF run without it, on the
/// call-heavy 186.crafty workload. Reports the relative overhead;
/// tools/check_bench_regression.sh gates it at
/// CFED_SHADOWSTACK_OVERHEAD_MAX (default 0.15).
static void BM_ShadowStackOverhead(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("186.crafty");
  double Overhead = 0.0;
  for (auto _ : State) {
    Overhead = measureShadowStackOverhead(Program);
    if (Overhead <= -1.0) {
      State.SkipWithError("program failed to load under the DBT");
      return;
    }
  }
  GShadowStackOverhead = Overhead;
  State.counters["shadow_stack_overhead"] = GShadowStackOverhead;
  State.SetItemsProcessed(int64_t(State.iterations()) * 2 *
                          int64_t(DigestRunPairs) *
                          int64_t(DigestRunBudget));
}
BENCHMARK(BM_ShadowStackOverhead);

static void BM_Translation(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("176.gcc");
  for (auto _ : State) {
    Memory Mem;
    Interpreter Interp(Mem);
    DbtConfig Config;
    Config.Tech = Technique::Rcf;
    Config.EagerTranslate = true;
    Dbt Translator(Mem, Config);
    bool Ok = Translator.load(Program, Interp.state());
    benchmark::DoNotOptimize(Ok);
    State.counters["blocks"] =
        static_cast<double>(Translator.blocks().size());
  }
}
BENCHMARK(BM_Translation);

int main(int argc, char **argv) {
  if (unsigned Jobs = ThreadPool::defaultJobCount(); Jobs > 1)
    benchmark::RegisterBenchmark("BM_CampaignThroughput", BM_CampaignThroughput)
        ->ArgName("jobs")
        ->Arg(static_cast<int64_t>(Jobs))
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  {
    bench::PerfReport Report("micro_dbt");
    benchmark::RunSpecifiedBenchmarks();
    if (GTelemetryOverhead != 0.0)
      Report.set("telemetry_overhead", GTelemetryOverhead);
    // The published hit rates come from the deterministic reference runs
    // below, NOT from the benchmark globals: a --benchmark_filter that
    // skips BM_PredecodedFetch/BM_IbtcDispatch would leave those at 0.0
    // and record a bogus total miss into BENCH_perf.json.
    // The reference runs share one registry, and the embedded snapshot
    // is taken after the last of them: snapshotting after run 1 used to
    // record dbt.ibtc_hits = 0 next to the nonzero ibtc_hit_rate that
    // run 2 measured through a private, registry-less translator.
    telemetry::MetricsRegistry Registry;
    {
      // Reference run 1: 181.mcf under the default DBT, for the
      // predecode hit rate.
      AsmProgram Program = assembleWorkload("181.mcf");
      Memory Mem;
      Interpreter Interp(Mem);
      Dbt Translator(Mem, DbtConfig{}, &Registry);
      if (Translator.load(Program, Interp.state())) {
        Translator.run(Interp, bench::RunBudget);
        Interp.publishMetrics(Registry);
        uint64_t Hits = Mem.predecodeHitCount();
        uint64_t Misses = Mem.predecodeMissCount();
        if (Hits + Misses)
          Report.set("predecode_hit_rate",
                     double(Hits) / double(Hits + Misses));
      }
    }
    {
      // Reference run 2: the call-heavy random program BM_IbtcDispatch
      // uses (every ret exits through TrampR), for the IBTC hit rate.
      RandomProgramOptions Options;
      Options.Seed = 97;
      Options.NumSegments = 8;
      Options.NumHelpers = 4;
      Options.LoopTrip = 32;
      AsmResult Result = assembleProgram(generateRandomProgram(Options));
      if (Result.succeeded()) {
        Memory Mem;
        Interpreter Interp(Mem);
        Dbt Translator(Mem, DbtConfig{}, &Registry);
        if (Translator.load(Result.Program, Interp.state())) {
          Translator.run(Interp, 10000000);
          uint64_t Hits = Translator.ibtcHitCount();
          uint64_t Misses = Translator.ibtcMissCount();
          if (Hits + Misses)
            Report.set("ibtc_hit_rate",
                       double(Hits) / double(Hits + Misses));
        }
      }
    }
    Report.setRegistry(Registry.snapshot());
    {
      // Reference run 3: scrub overhead measured deterministically
      // (best of three off/on pairs), independent of any
      // --benchmark_filter that skips BM_ScrubOverhead.
      AsmProgram Program = assembleWorkload("181.mcf");
      auto RunOnce = [&Program](const DbtConfig &Config) {
        Memory Mem;
        Interpreter Interp(Mem);
        Dbt Translator(Mem, Config);
        if (!Translator.load(Program, Interp.state()))
          return -1.0;
        auto Begin = std::chrono::steady_clock::now();
        Translator.run(Interp, 1000000);
        auto End = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(Interp.cycleCount());
        return std::chrono::duration<double>(End - Begin).count();
      };
      double BestOff = -1.0, BestOn = -1.0;
      for (int I = 0; I < 3; ++I) {
        double Off = RunOnce(scrubBaselineConfig());
        double On = RunOnce(scrubEnabledConfig());
        if (Off < 0 || On < 0)
          break;
        if (BestOff < 0 || Off < BestOff)
          BestOff = Off;
        if (BestOn < 0 || On < BestOn)
          BestOn = On;
      }
      if (BestOff > 0 && BestOn > 0)
        Report.set("scrub_overhead", BestOn / BestOff - 1.0);
    }
    {
      // Reference run 4: live-export overhead measured deterministically
      // (best of three off/on pairs), independent of any
      // --benchmark_filter that skips BM_LiveExportOverhead.
      AsmProgram Program = assembleWorkload("181.mcf");
      double BestOff = -1.0, BestOn = -1.0;
      for (int I = 0; I < 3; ++I) {
        double Off = timedLiveExportRun(Program, false);
        double On = timedLiveExportRun(Program, true);
        if (Off < 0 || On < 0)
          break;
        if (BestOff < 0 || Off < BestOff)
          BestOff = Off;
        if (BestOn < 0 || On < BestOn)
          BestOn = On;
      }
      if (BestOff > 0 && BestOn > 0)
        Report.set("live_export_overhead", BestOn / BestOff - 1.0);
    }
    {
      // Reference run 5: digest-capture overhead, measured with the
      // same paired-median estimator as BM_DigestCapture so the gated
      // JSON value is independent of any --benchmark_filter that skips
      // the benchmark itself.
      AsmProgram Program = assembleWorkload("181.mcf");
      telemetry::DigestRecorder Digests;
      double Overhead = measureDigestOverhead(Program, Digests);
      if (Overhead >= 0)
        Report.set("digest_overhead", Overhead);
    }
    {
      // Reference run 6: shadow-return-stack overhead on the call-heavy
      // workload, with the same paired-median estimator as
      // BM_ShadowStackOverhead so the gated JSON value is independent
      // of any --benchmark_filter that skips the benchmark itself.
      AsmProgram Program = assembleWorkload("186.crafty");
      double Overhead = measureShadowStackOverhead(Program);
      if (Overhead > -1.0)
        Report.set("shadow_stack_overhead", Overhead);
    }
  }
  benchmark::Shutdown();
  return 0;
}
