//===- micro_dbt.cpp - google-benchmark microbenchmarks -------------------------===//
//
// Host-time microbenchmarks of the infrastructure itself (the only
// bench measuring wall-clock rather than model cycles): assembler
// throughput, encode/decode, interpreter dispatch, and whole-program
// translation.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "dbt/Dbt.h"
#include "vm/Loader.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace cfed;

static void BM_Assembler(benchmark::State &State) {
  std::string Source = getWorkloadSource("164.gzip");
  for (auto _ : State) {
    AsmResult Result = assembleProgram(Source);
    benchmark::DoNotOptimize(Result.Program.Code.data());
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Source.size());
}
BENCHMARK(BM_Assembler);

static void BM_EncodeDecode(benchmark::State &State) {
  Instruction I = insn::rri(Opcode::Lea, RegPCP, RegPCP, 12345);
  uint8_t Buffer[InsnSize];
  for (auto _ : State) {
    I.encode(Buffer);
    auto Decoded = Instruction::decode(Buffer);
    benchmark::DoNotOptimize(Decoded);
  }
}
BENCHMARK(BM_EncodeDecode);

static void BM_InterpreterDispatch(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("181.mcf");
  for (auto _ : State) {
    Memory Mem;
    Interpreter Interp(Mem);
    loadProgram(Program, LoadMode::Native, Mem, Interp.state());
    Interp.run(100000);
    benchmark::DoNotOptimize(Interp.cycleCount());
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * 100000);
}
BENCHMARK(BM_InterpreterDispatch);

static void BM_Translation(benchmark::State &State) {
  AsmProgram Program = assembleWorkload("176.gcc");
  for (auto _ : State) {
    Memory Mem;
    Interpreter Interp(Mem);
    DbtConfig Config;
    Config.Tech = Technique::Rcf;
    Config.EagerTranslate = true;
    Dbt Translator(Mem, Config);
    bool Ok = Translator.load(Program, Interp.state());
    benchmark::DoNotOptimize(Ok);
    State.counters["blocks"] =
        static_cast<double>(Translator.blocks().size());
  }
}
BENCHMARK(BM_Translation);

BENCHMARK_MAIN();
