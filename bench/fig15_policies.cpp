//===- fig15_policies.cpp - Reproduces Figure 15 -------------------------------===//
//
// Figure 15: slowdown of the RCF technique under the four signature
// checking policies (ALLBB, RET-BE, RET, END) per benchmark, with the
// fp/int/all geometric means. Signatures are updated in every block
// under every policy; the policy only chooses where the check runs
// (Section 6's relaxed fail report model).
//
// A second sweep runs every policy under the optimizing trace tier,
// where hot regions additionally relax toward the configured hot
// policy (RET-BE) and redundant updates fold along trace spines. The
// per-policy geomeans for both tiers and the number of checks elided
// by adaptive placement go into BENCH_perf.json.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <cstdio>
#include <string>

using namespace cfed;
using namespace cfed::bench;

int main() {
  PerfReport Report("fig15_policies");
  std::printf("=== Figure 15: RCF slowdown under the checking policies "
              "===\n\n");
  // STORE is the Reis et al. variant Section 6 mentions (check before
  // data can leave the processor); the paper's figure sweeps the other
  // four.
  const CheckPolicy Policies[] = {CheckPolicy::AllBB, CheckPolicy::RetBE,
                                  CheckPolicy::Ret, CheckPolicy::End,
                                  CheckPolicy::StoreBB};
  const char *PolicyNames[] = {"ALLBB", "RET-BE", "RET", "END", "STORE"};
  const char *PolicyKeys[] = {"allbb", "retbe", "ret", "end", "store"};
  constexpr unsigned NumPolicies = 5;
  Table T;
  T.setHeader({"Benchmark", "ALLBB", "RET-BE", "RET", "END", "STORE"});
  std::vector<double> Geo[NumPolicies], GeoFp[NumPolicies],
      GeoInt[NumPolicies], GeoOpt[NumPolicies];
  uint64_t ChecksElided = 0;

  auto EmitGeomean = [&](const char *Label, std::vector<double> *Values) {
    T.addSeparator();
    std::vector<std::string> Row = {Label};
    for (unsigned PI = 0; PI < NumPolicies; ++PI)
      Row.push_back(formatSlowdown(geometricMean(Values[PI])));
    T.addRow(Row);
  };

  std::vector<WorkloadInfo> Ordered;
  for (const WorkloadInfo &Info : getWorkloadSuite())
    if (Info.IsFp)
      Ordered.push_back(Info);
  for (const WorkloadInfo &Info : getWorkloadSuite())
    if (!Info.IsFp)
      Ordered.push_back(Info);

  bool PrintedFpGeomean = false;
  for (size_t Index = 0; Index < Ordered.size(); ++Index) {
    const WorkloadInfo &Info = Ordered[Index];
    AsmProgram Program = assembleWorkload(Info.Name);
    uint64_t Base = runDbtCycles(Program, DbtConfig{});
    std::vector<std::string> Row = {shortName(Info.Name)};
    for (unsigned PI = 0; PI < NumPolicies; ++PI) {
      DbtConfig Config;
      Config.Tech = Technique::Rcf;
      Config.Policy = Policies[PI];
      double Slowdown =
          double(runDbtCycles(Program, Config)) / double(Base);
      Row.push_back(formatSlowdown(Slowdown));
      Geo[PI].push_back(Slowdown);
      (Info.IsFp ? GeoFp[PI] : GeoInt[PI]).push_back(Slowdown);

      Config.Tier = DbtTier::Opt;
      RunMetrics Opt = runDbtMetrics(Program, Config);
      GeoOpt[PI].push_back(double(Opt.Cycles) / double(Base));
      ChecksElided += Opt.ChecksElided;
    }
    T.addRow(Row);
    if (Info.IsFp &&
        (Index + 1 == Ordered.size() || !Ordered[Index + 1].IsFp) &&
        !PrintedFpGeomean) {
      EmitGeomean("geomean-fp", GeoFp);
      PrintedFpGeomean = true;
    }
  }
  EmitGeomean("geomean-int", GeoInt);
  EmitGeomean("geomean-all", Geo);
  std::printf("%s\n", T.render().c_str());

  Table Tiers;
  Tiers.setHeader({"Policy", "base tier", "opt tier"});
  for (unsigned PI = 0; PI < NumPolicies; ++PI) {
    Tiers.addRow({PolicyNames[PI], formatSlowdown(geometricMean(Geo[PI])),
                  formatSlowdown(geometricMean(GeoOpt[PI]))});
    Report.set(std::string("geomean_") + PolicyKeys[PI] + "_base",
               geometricMean(Geo[PI]));
    Report.set(std::string("geomean_") + PolicyKeys[PI] + "_opt",
               geometricMean(GeoOpt[PI]));
  }
  std::printf("Geomean slowdown per policy and translation tier:\n%s\n",
              Tiers.render().c_str());
  Report.set("checks_elided", ChecksElided);

  std::printf("Paper shape: ALLBB > RET-BE > RET ~ END; int benefits "
              "more than fp; RET ~ END because\nprograms live in inner "
              "loops, not call/return.\nOpt tier: hot regions relax to "
              "the laxer of the configured and hot policies\n(RET-BE), so "
              "ALLBB under the opt tier approaches RET-BE in hot code "
              "while cold\ncode keeps per-block checks.\n");
  return 0;
}
