//===- fig14_update_insn.cpp - Reproduces Figure 14 ----------------------------===//
//
// Figure 14: geometric-mean slowdown over the whole suite when the
// conditional signature update is implemented with an inserted
// conditional jump (Jcc) versus a conditional move (CMOVcc), for RCF,
// EdgCF and ECF. The Jcc rows are "unsafe" for EdgCF and ECF — the
// inserted jump is itself an unprotected fault site — while RCF's
// regions protect it (the paper's shaded cells).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <cstdio>

using namespace cfed;
using namespace cfed::bench;

int main() {
  std::printf("=== Figure 14: Jcc vs CMOVcc signature updates "
              "(geomean slowdown) ===\n\n");
  const Technique Techs[] = {Technique::Rcf, Technique::EdgCf,
                             Technique::Ecf};
  const UpdateFlavor Flavors[] = {UpdateFlavor::Jcc, UpdateFlavor::CMovcc};

  // Baselines once per workload.
  std::vector<AsmProgram> Programs;
  std::vector<uint64_t> Baselines;
  for (const WorkloadInfo &Info : getWorkloadSuite()) {
    Programs.push_back(assembleWorkload(Info.Name));
    Baselines.push_back(runDbtCycles(Programs.back(), DbtConfig{}));
  }

  Table T;
  T.setHeader({"Update insn", "RCF", "EdgCF", "ECF", "unsafe"});
  for (UpdateFlavor Flavor : Flavors) {
    std::vector<std::string> Row = {getUpdateFlavorName(Flavor)};
    for (Technique Tech : Techs) {
      std::vector<double> Slowdowns;
      for (size_t I = 0; I < Programs.size(); ++I) {
        DbtConfig Config;
        Config.Tech = Tech;
        Config.Flavor = Flavor;
        Slowdowns.push_back(double(runDbtCycles(Programs[I], Config)) /
                            double(Baselines[I]));
      }
      Row.push_back(formatSlowdown(geometricMean(Slowdowns)));
    }
    Row.push_back(Flavor == UpdateFlavor::Jcc ? "EdgCF, ECF" : "none");
    T.addRow(Row);
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Paper reference: Jcc 1.46/1.41/1.39, CMOVcc "
              "1.57/1.54/1.44; RCF with Jcc is safe and\nnearly matches "
              "ECF with CMOVcc.\n");
  return 0;
}
