//===- fig3_error_categories.cpp - Reproduces Figure 3 -------------------------===//
//
// Figure 3: the branch-error probabilities restricted to the silent-
// data-corruption-capable categories A-E (category F is caught by the
// memory protection hardware, and No Error faults are harmless), for
// SPEC-Int and SPEC-Fp.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "fault/ErrorModel.h"
#include "support/Table.h"

#include <cstdio>

using namespace cfed;
using namespace cfed::bench;

int main() {
  std::printf("=== Figure 3: error probabilities among categories A-E "
              "===\n\n");
  ErrorModelResult Int, Fp;
  for (const std::string &Name : getIntWorkloadNames())
    Int.merge(runErrorModel(assembleWorkload(Name), RunBudget));
  for (const std::string &Name : getFpWorkloadNames())
    Fp.merge(runErrorModel(assembleWorkload(Name), RunBudget));

  Table T;
  T.setHeader({"Category", "SPEC-Int", "SPEC-Fp"});
  for (BranchErrorCategory Cat :
       {BranchErrorCategory::A, BranchErrorCategory::B,
        BranchErrorCategory::C, BranchErrorCategory::D,
        BranchErrorCategory::E}) {
    T.addRow({getCategoryName(Cat),
              formatPercent(Int.probabilityAmongAtoE(Cat)),
              formatPercent(Fp.probabilityAmongAtoE(Cat))});
  }
  T.addSeparator();
  T.addRow({"Total", "100.00%", "100.00%"});
  std::printf("%s\n", T.render().c_str());
  std::printf("Paper shape: E dominates, A second; C > D on fp (big "
              "blocks), C < D on int.\n");
  return 0;
}
