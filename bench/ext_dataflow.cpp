//===- ext_dataflow.cpp - Data-flow checking extension evaluation ---------------===//
//
// The paper's future work ("we will add data flow checking into our
// implementation and measure the overall performance impact... and
// soft-error injection to measure the actual effectiveness"), run on the
// SWIFT-style extension in cfc/DataFlow.h:
//
//  1. Performance: slowdown of EdgCF alone vs EdgCF + data-flow checking
//     over the DBT baseline, per suite half.
//  2. Effectiveness: single-bit *register* faults (the datapath error
//     model) with and without data-flow checking — control-flow checking
//     alone is blind to them.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "fault/RegisterFault.h"
#include "support/Stats.h"
#include "support/Table.h"
#include "workloads/RandomProgram.h"

#include <cstdio>

using namespace cfed;
using namespace cfed::bench;

int main(int argc, char **argv) {
  unsigned Jobs = parseJobs(argc, argv);
  PerfReport Report("ext_dataflow");
  Report.set("jobs", Jobs);
  std::printf("=== Extension: SWIFT-style data-flow checking under the "
              "DBT ===\n\n");

  // Performance over a representative slice (full duplication roughly
  // doubles dynamic work on ALU-dominated code).
  const char *Names[] = {"164.gzip", "181.mcf", "197.parser", "171.swim",
                         "188.ammp", "189.lucas"};
  Table T;
  T.setHeader({"Benchmark", "EdgCF", "EdgCF+DFC"});
  std::vector<double> Cfc, CfcDfc;
  for (const char *Name : Names) {
    AsmProgram Program = assembleWorkload(Name);
    uint64_t Base = runDbtCycles(Program, DbtConfig{});
    DbtConfig Plain;
    Plain.Tech = Technique::EdgCf;
    DbtConfig Dfc = Plain;
    Dfc.DataFlowCheck = true;
    double A = double(runDbtCycles(Program, Plain)) / double(Base);
    double B = double(runDbtCycles(Program, Dfc)) / double(Base);
    Cfc.push_back(A);
    CfcDfc.push_back(B);
    T.addRow({shortName(Name), formatSlowdown(A), formatSlowdown(B)});
  }
  T.addSeparator();
  T.addRow({"geomean", formatSlowdown(geometricMean(Cfc)),
            formatSlowdown(geometricMean(CfcDfc))});
  std::printf("%s\n", T.render().c_str());
  Report.set("edgcf_slowdown_geomean", geometricMean(Cfc));
  Report.set("edgcf_dfc_slowdown_geomean", geometricMean(CfcDfc));

  // Effectiveness under register faults.
  std::printf("=== Register-fault campaign (single bit in r0-r14 at a "
              "random instruction; %u jobs) ===\n\n",
              Jobs);
  Table T2;
  T2.setHeader({"Config", "det-sig", "det-hw", "masked", "SDC",
                "timeout"});
  std::vector<AsmProgram> Programs;
  for (uint64_t Seed : {7, 21}) {
    RandomProgramOptions Options;
    Options.Seed = Seed;
    Options.NumSegments = 8;
    AsmResult R = assembleProgram(generateRandomProgram(Options));
    if (!R.succeeded())
      return 1;
    Programs.push_back(std::move(R.Program));
  }
  for (bool Dfc : {false, true}) {
    RegisterCampaignReport Totals;
    for (size_t PI = 0; PI < Programs.size(); ++PI) {
      DbtConfig Config;
      Config.Tech = Technique::EdgCf;
      Config.DataFlowCheck = Dfc;
      RegisterCampaignReport R = runRegisterFaultCampaignDetailed(
          Programs[PI], Config, 150, 500 + PI, 50000000ULL,
          FaultModel::SingleBit, Jobs);
      Totals.Counts.merge(R.Counts);
      Totals.DetectionLatencies.insert(Totals.DetectionLatencies.end(),
                                       R.DetectionLatencies.begin(),
                                       R.DetectionLatencies.end());
    }
    auto Cell = [](uint64_t Value) { return std::to_string(Value); };
    T2.addRow({Dfc ? "EdgCF + data-flow" : "EdgCF alone",
               Cell(Totals.Counts.DetectedSig), Cell(Totals.Counts.DetectedHw),
               Cell(Totals.Counts.Masked), Cell(Totals.Counts.Sdc),
               Cell(Totals.Counts.Timeout)});
    std::string Prefix = Dfc ? "dfc" : "cfc_only";
    Report.set(Prefix + "_detected",
               Totals.Counts.DetectedSig + Totals.Counts.DetectedHw);
    Report.set(Prefix + "_sdc", Totals.Counts.Sdc);
    Report.set(Prefix + "_recovered", Totals.Counts.Recovered);
    Report.set(Prefix + "_masked", Totals.Counts.Masked);
    Report.set(Prefix + "_timeout", Totals.Counts.Timeout);
    Report.set(Prefix + "_injections", Totals.Counts.total());
    Report.set(Prefix + "_latency_mean", Totals.latencyMean());
    Report.set(Prefix + "_latency_max", Totals.latencyMax());
    std::printf("%s: %zu detections, latency mean %.0f insns, max %llu\n",
                Dfc ? "EdgCF + data-flow" : "EdgCF alone",
                Totals.DetectionLatencies.size(), Totals.latencyMean(),
                (unsigned long long)Totals.latencyMax());
  }
  std::printf("\n");
  std::printf("%s\n", T2.render().c_str());
  std::printf("Expected shape: control-flow checking alone reports no "
              "register faults (det-sig 0);\nthe data-flow layer "
              "converts most SDCs into reports at a SWIFT-like "
              "performance cost.\nResidual SDCs are faults consumed "
              "only by branch decisions before being overwritten\n(the "
              "window full SWIFT closes with duplicated branch-operand "
              "validation).\n");
  return 0;
}
