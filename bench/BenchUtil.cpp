//===- BenchUtil.cpp - Shared helpers for the figure benches --------------------===//

#include "bench/BenchUtil.h"

#include "support/Diagnostics.h"
#include "support/Format.h"
#include "support/ThreadPool.h"
#include "vm/Loader.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

using namespace cfed;
using namespace cfed::bench;

uint64_t cfed::bench::runDbtCycles(const AsmProgram &Program,
                                   const DbtConfig &Config) {
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  if (!Translator.load(Program, Interp.state()))
    reportFatalError("bench workload failed to load under the DBT");
  StopInfo Stop = Translator.run(Interp, RunBudget);
  if (Stop.Kind != StopKind::Halted)
    reportFatalError(formatString("bench workload did not halt (%s)",
                                  getTrapKindName(Stop.Trap)));
  return Interp.cycleCount();
}

RunMetrics cfed::bench::runDbtMetrics(const AsmProgram &Program,
                                      const DbtConfig &Config) {
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  if (!Translator.load(Program, Interp.state()))
    reportFatalError("bench workload failed to load under the DBT");
  StopInfo Stop = Translator.run(Interp, RunBudget);
  if (Stop.Kind != StopKind::Halted)
    reportFatalError(formatString("bench workload did not halt (%s)",
                                  getTrapKindName(Stop.Trap)));
  RunMetrics Metrics;
  Metrics.Cycles = Interp.cycleCount();
  Metrics.Dispatches = Translator.dispatchCount();
  Metrics.PredecodeHits = Mem.predecodeHitCount();
  Metrics.PredecodeMisses = Mem.predecodeMissCount();
  Metrics.IbtcHits = Translator.ibtcHitCount();
  Metrics.IbtcMisses = Translator.ibtcMissCount();
  Metrics.TracePromotions = Translator.tracePromotionCount();
  Metrics.TracesFormed = Translator.traceCount();
  Metrics.TraceCondFusions = Translator.traceCondFusionCount();
  Metrics.ChecksElided = Translator.checksElidedCount();
  return Metrics;
}

unsigned cfed::bench::parseJobs(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    const char *Value = nullptr;
    if (std::strncmp(Arg, "--jobs=", 7) == 0)
      Value = Arg + 7;
    else if (std::strcmp(Arg, "--jobs") == 0 && I + 1 < Argc)
      Value = Argv[I + 1];
    if (Value) {
      long Parsed = std::strtol(Value, nullptr, 10);
      if (Parsed >= 1)
        return static_cast<unsigned>(Parsed);
      reportFatalError(formatString("invalid --jobs value '%s'", Value));
    }
  }
  return ThreadPool::defaultJobCount();
}

PerfReport::PerfReport(std::string BenchName)
    : BenchName(std::move(BenchName)),
      Wall(std::make_unique<telemetry::PhaseProfiler::Scope>(
          &Profiler, telemetry::Phase::Wall)) {}

void PerfReport::set(const std::string &Key, double Value) {
  Fields.emplace_back(Key, formatString("%.4f", Value));
}

void PerfReport::set(const std::string &Key, uint64_t Value) {
  Fields.emplace_back(Key,
                      formatString("%llu", (unsigned long long)Value));
}

void PerfReport::setRegistry(const telemetry::RegistrySnapshot &Snap) {
  Fields.emplace_back("registry", Snap.toJson());
}

PerfReport::~PerfReport() {
  Wall.reset();
  double WallSeconds =
      double(Profiler.totalNs(telemetry::Phase::Wall)) / 1e9;

  std::ostringstream Entry;
  Entry << "{\"wall_seconds\": " << formatString("%.3f", WallSeconds);
  for (const auto &[Key, Value] : Fields)
    Entry << ", \"" << Key << "\": " << Value;
  Entry << "}";

  const char *Path = std::getenv("CFED_PERF_JSON");
  if (!Path)
    Path = "BENCH_perf.json";

  // Merge with existing entries: the file is one entry per line, so other
  // benches' results survive a rerun of this one.
  std::map<std::string, std::string> Entries;
  {
    std::ifstream In(Path);
    std::string Line;
    while (std::getline(In, Line)) {
      size_t NameBegin = Line.find('"');
      if (NameBegin == std::string::npos)
        continue;
      size_t NameEnd = Line.find('"', NameBegin + 1);
      size_t Colon = Line.find(':', NameEnd);
      if (NameEnd == std::string::npos || Colon == std::string::npos)
        continue;
      std::string Body = Line.substr(Colon + 1);
      while (!Body.empty() && (Body.back() == ',' || Body.back() == ' '))
        Body.pop_back();
      size_t BodyBegin = Body.find_first_not_of(' ');
      if (BodyBegin == std::string::npos || Body[BodyBegin] != '{')
        continue;
      Entries[Line.substr(NameBegin + 1, NameEnd - NameBegin - 1)] =
          Body.substr(BodyBegin);
    }
  }
  Entries[BenchName] = Entry.str();

  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return;
  Out << "{\n";
  size_t I = 0;
  for (const auto &[Name, Body] : Entries) {
    Out << "  \"" << Name << "\": " << Body;
    if (++I < Entries.size())
      Out << ",";
    Out << "\n";
  }
  Out << "}\n";
}

uint64_t cfed::bench::runNativeCycles(const AsmProgram &Program) {
  Memory Mem;
  Interpreter Interp(Mem);
  loadProgram(Program, LoadMode::Native, Mem, Interp.state());
  StopInfo Stop = Interp.run(RunBudget);
  if (Stop.Kind != StopKind::Halted)
    reportFatalError("bench workload did not halt natively");
  return Interp.cycleCount();
}

std::string cfed::bench::shortName(const std::string &Name) {
  size_t Dot = Name.find('.');
  return Dot == std::string::npos ? Name : Name.substr(Dot + 1);
}

std::string cfed::bench::formatSlowdown(double Value) {
  return formatString("%.3f", Value);
}

std::string cfed::bench::formatPercent(double Value) {
  return formatString("%.2f%%", Value * 100.0);
}
