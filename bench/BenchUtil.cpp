//===- BenchUtil.cpp - Shared helpers for the figure benches --------------------===//

#include "bench/BenchUtil.h"

#include "support/Diagnostics.h"
#include "support/Format.h"
#include "vm/Loader.h"

using namespace cfed;
using namespace cfed::bench;

uint64_t cfed::bench::runDbtCycles(const AsmProgram &Program,
                                   const DbtConfig &Config) {
  Memory Mem;
  Interpreter Interp(Mem);
  Dbt Translator(Mem, Config);
  if (!Translator.load(Program, Interp.state()))
    reportFatalError("bench workload failed to load under the DBT");
  StopInfo Stop = Translator.run(Interp, RunBudget);
  if (Stop.Kind != StopKind::Halted)
    reportFatalError(formatString("bench workload did not halt (%s)",
                                  getTrapKindName(Stop.Trap)));
  return Interp.cycleCount();
}

uint64_t cfed::bench::runNativeCycles(const AsmProgram &Program) {
  Memory Mem;
  Interpreter Interp(Mem);
  loadProgram(Program, LoadMode::Native, Mem, Interp.state());
  StopInfo Stop = Interp.run(RunBudget);
  if (Stop.Kind != StopKind::Halted)
    reportFatalError("bench workload did not halt natively");
  return Interp.cycleCount();
}

std::string cfed::bench::shortName(const std::string &Name) {
  size_t Dot = Name.find('.');
  return Dot == std::string::npos ? Name : Name.substr(Dot + 1);
}

std::string cfed::bench::formatSlowdown(double Value) {
  return formatString("%.3f", Value);
}

std::string cfed::bench::formatPercent(double Value) {
  return formatString("%.2f%%", Value * 100.0);
}
